//! [`FpgaHandle`]: the user-library + runtime-server pair of §II-C.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bcore::{CommandToken, MmioRegister, SocSim};
use bplatform::AddressSpace;
use bsim::Cycle;

use crate::alloc::{AllocError, DeviceAllocator};

/// A pointer into accelerator-visible memory (the paper's `remote_ptr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemotePtr {
    addr: u64,
    len: u64,
}

impl RemotePtr {
    /// The device address (what gets packed into `Address` command fields).
    pub fn device_addr(&self) -> u64 {
        self.addr
    }

    /// Allocation length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the allocation is zero-length (never true for live ptrs).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-range of this allocation, `offset` bytes in.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the allocation.
    pub fn offset(&self, offset: u64) -> RemotePtr {
        assert!(offset <= self.len, "offset beyond allocation");
        RemotePtr {
            addr: self.addr + offset,
            len: self.len - offset,
        }
    }
}

/// Host-side timing knobs for the runtime server model.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// Cost of acquiring/releasing the runtime server lock per command
    /// (mutex + queueing in the userspace server).
    pub lock_overhead_ns: u64,
    /// Interval between response-poll reads while blocked in `get()`.
    pub poll_interval_ns: u64,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            lock_overhead_ns: 400,
            poll_interval_ns: 500,
        }
    }
}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuntimeStats {
    /// Commands submitted.
    pub commands: u64,
    /// Responses retrieved.
    pub responses: u64,
    /// DMA bytes moved host→device.
    pub dma_to_device_bytes: u64,
    /// DMA bytes moved device→host.
    pub dma_from_device_bytes: u64,
    /// Host nanoseconds spent inside the serialized runtime server
    /// (lock + MMIO) — the Figure-6 contention term.
    pub server_busy_ns: u64,
}

/// Errors from [`FpgaHandle::call`] and friends.
#[derive(Debug)]
pub enum CallError {
    /// No system with that name exists on the device.
    UnknownSystem(String),
    /// The underlying send failed (bad core index or arguments).
    Send(bcore::soc::SendError),
    /// Allocation failed. Carries enough context for a multi-session
    /// caller to distinguish genuine memory pressure from fragmentation
    /// without reaching back into the shared allocator.
    Alloc {
        /// The underlying allocator failure.
        error: AllocError,
        /// Bytes the caller asked for (pre-alignment).
        requested: u64,
        /// The shared allocator's peak concurrently-allocated bytes at
        /// failure time ([`DeviceAllocator::high_water_mark`]).
        high_water: u64,
    },
    /// A blocking `get` exceeded its cycle budget.
    Timeout {
        /// Cycles waited.
        waited: Cycle,
    },
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::UnknownSystem(name) => write!(f, "no system named '{name}'"),
            CallError::Send(e) => write!(f, "command send failed: {e}"),
            CallError::Alloc {
                error,
                requested,
                high_water,
            } => write!(
                f,
                "allocation failed: {error} (requested {requested} bytes, \
                 allocator high-water mark {high_water} bytes)"
            ),
            CallError::Timeout { waited } => write!(f, "response timed out after {waited} cycles"),
        }
    }
}

impl std::error::Error for CallError {}

struct Inner {
    soc: SocSim,
    allocator: DeviceAllocator,
    /// Host-side shadow buffers for discrete platforms.
    host_shadow: HashMap<u64, Vec<u8>>,
    opts: RuntimeOptions,
    stats: RuntimeStats,
    /// Default budget for blocking `get`s, fabric cycles.
    get_timeout_cycles: Cycle,
    /// Session ids handed out so far (see [`FpgaHandle::open_session`]).
    next_session: u32,
}

impl Inner {
    /// Advances the device while `ns` of host time passes.
    ///
    /// The poll cadence is part of the modelled host timing (responses are
    /// observed at poll boundaries); the underlying `run_for` fast-forwards
    /// across quiescent stretches inside each chunk, so idle polling is
    /// cheap in host time without changing any observed cycle.
    fn advance_ns(&mut self, ns: u64) {
        let cycles = self.soc.clock().ps_to_cycles(ns * 1000);
        self.soc.run_for(cycles);
    }
}

/// The paper's `fpga_handle_t`: owns the device simulation, the allocator,
/// and the (serialized) runtime server. Clone freely — clones share state,
/// like multiple library handles talking to one runtime server.
#[derive(Clone)]
pub struct FpgaHandle {
    inner: Arc<Mutex<Inner>>,
}

/// The paper's `response_handle<T>`: poll or block for a command's
/// completion.
#[derive(Clone)]
pub struct ResponseHandle {
    inner: Arc<Mutex<Inner>>,
    token: CommandToken,
    resolved: Arc<Mutex<Option<u64>>>,
}

impl FpgaHandle {
    /// Opens a handle over a composed SoC.
    pub fn new(soc: SocSim) -> Self {
        Self::with_options(soc, RuntimeOptions::default())
    }

    /// Opens a handle with explicit runtime timing options.
    pub fn with_options(soc: SocSim, opts: RuntimeOptions) -> Self {
        let platform = soc.platform().clone();
        let allocator = DeviceAllocator::new(platform.mem_base.max(4096), platform.mem_size);
        Self {
            inner: Arc::new(Mutex::new(Inner {
                soc,
                allocator,
                host_shadow: HashMap::new(),
                opts,
                stats: RuntimeStats::default(),
                get_timeout_cycles: 2_000_000_000,
                next_session: 0,
            })),
        }
    }

    /// Allocates accelerator-visible memory.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures.
    pub fn malloc(&self, n_bytes: u64) -> Result<RemotePtr, CallError> {
        let mut inner = self.inner.lock().expect("runtime lock poisoned");
        let addr = inner
            .allocator
            .malloc(n_bytes)
            .map_err(|error| CallError::Alloc {
                error,
                requested: n_bytes,
                high_water: inner.allocator.high_water_mark(),
            })?;
        let len = inner
            .allocator
            .allocation_len(addr)
            .expect("just allocated");
        if inner.soc.platform().address_space == AddressSpace::Discrete {
            inner.host_shadow.insert(addr, vec![0u8; len as usize]);
        }
        Ok(RemotePtr { addr, len })
    }

    /// Releases an allocation.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures (double free, foreign pointer).
    pub fn free(&self, ptr: RemotePtr) -> Result<(), CallError> {
        let mut inner = self.inner.lock().expect("runtime lock poisoned");
        inner
            .allocator
            .free(ptr.addr)
            .map_err(|error| CallError::Alloc {
                error,
                requested: ptr.len,
                high_water: inner.allocator.high_water_mark(),
            })?;
        inner.host_shadow.remove(&ptr.addr);
        Ok(())
    }

    /// Writes host data at `ptr + offset`. On embedded (shared-memory)
    /// platforms this is immediately accelerator-visible; on discrete
    /// platforms it lands in the host shadow until
    /// [`FpgaHandle::copy_to_fpga`].
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the allocation.
    pub fn write_at(&self, ptr: RemotePtr, offset: u64, data: &[u8]) {
        assert!(
            offset + data.len() as u64 <= ptr.len,
            "write beyond allocation"
        );
        let mut inner = self.inner.lock().expect("runtime lock poisoned");
        match inner.soc.platform().address_space {
            AddressSpace::Shared => {
                inner
                    .soc
                    .memory()
                    .borrow_mut()
                    .write(ptr.addr + offset, data);
            }
            AddressSpace::Discrete => {
                let base = ptr.addr;
                let shadow = inner
                    .host_shadow
                    .get_mut(&base)
                    .expect("live discrete allocation has a shadow");
                let off = offset as usize;
                shadow[off..off + data.len()].copy_from_slice(data);
            }
        }
    }

    /// Reads host-visible data at `ptr + offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the allocation.
    pub fn read_at(&self, ptr: RemotePtr, offset: u64, len: usize) -> Vec<u8> {
        assert!(offset + len as u64 <= ptr.len, "read beyond allocation");
        let inner = self.inner.lock().expect("runtime lock poisoned");
        match inner.soc.platform().address_space {
            AddressSpace::Shared => inner.soc.memory().borrow().read_vec(ptr.addr + offset, len),
            AddressSpace::Discrete => {
                let shadow = &inner.host_shadow[&ptr.addr];
                shadow[offset as usize..offset as usize + len].to_vec()
            }
        }
    }

    /// Convenience: write a `u32` slice at offset 0.
    pub fn write_u32_slice(&self, ptr: RemotePtr, values: &[u32]) {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_at(ptr, 0, &bytes);
    }

    /// Convenience: read a `u32` slice from offset 0.
    pub fn read_u32_slice(&self, ptr: RemotePtr, count: usize) -> Vec<u32> {
        self.read_at(ptr, 0, count * 4)
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// DMA host→device (no-op on shared-memory platforms). Advances
    /// simulated time by the platform's DMA cost model.
    pub fn copy_to_fpga(&self, ptr: RemotePtr) {
        let mut inner = self.inner.lock().expect("runtime lock poisoned");
        if inner.soc.platform().address_space == AddressSpace::Shared {
            return;
        }
        let data = inner.host_shadow[&ptr.addr].clone();
        inner.soc.memory().borrow_mut().write(ptr.addr, &data);
        let link = inner.soc.platform().host_link;
        let ns = link.dma_setup_ns + data.len() as u64 * 1_000_000_000 / link.dma_bytes_per_sec;
        inner.stats.dma_to_device_bytes += data.len() as u64;
        inner.advance_ns(ns);
    }

    /// DMA device→host (no-op on shared-memory platforms).
    pub fn copy_from_fpga(&self, ptr: RemotePtr) {
        let mut inner = self.inner.lock().expect("runtime lock poisoned");
        if inner.soc.platform().address_space == AddressSpace::Shared {
            return;
        }
        let data = inner
            .soc
            .memory()
            .borrow()
            .read_vec(ptr.addr, ptr.len as usize);
        let link = inner.soc.platform().host_link;
        let ns = link.dma_setup_ns + data.len() as u64 * 1_000_000_000 / link.dma_bytes_per_sec;
        inner.stats.dma_from_device_bytes += data.len() as u64;
        inner.host_shadow.insert(ptr.addr, data);
        inner.advance_ns(ns);
    }

    /// Sends a custom command through the runtime server. `args` are the
    /// command's named fields (the generated bindings build this map).
    ///
    /// Models the serialized server: lock acquisition plus one MMIO write
    /// per RoCC beat, during which the device keeps running.
    ///
    /// # Errors
    ///
    /// [`CallError::UnknownSystem`] or a packing/routing failure.
    pub fn call(
        &self,
        system: &str,
        core_idx: u16,
        args: std::collections::BTreeMap<String, u64>,
    ) -> Result<ResponseHandle, CallError> {
        let mut inner = self.inner.lock().expect("runtime lock poisoned");
        let sys_id = inner
            .soc
            .system_id(system)
            .ok_or_else(|| CallError::UnknownSystem(system.to_owned()))?;
        let link = inner.soc.platform().host_link;
        // Serialized server work: lock + MMIO writes (5 words per beat).
        let server_ns = inner.opts.lock_overhead_ns + link.mmio_latency_ns;
        inner.advance_ns(server_ns);
        inner.stats.server_busy_ns += server_ns;
        let token = loop {
            match inner.soc.send_command(sys_id, core_idx, &args) {
                Ok(t) => break t,
                Err(bcore::soc::SendError::QueueFull) => {
                    // Command FIFO full: the server spins on the MMIO
                    // status register.
                    let spin = inner.opts.poll_interval_ns.max(1);
                    inner.advance_ns(spin);
                    inner.stats.server_busy_ns += spin;
                }
                Err(e) => return Err(CallError::Send(e)),
            }
        };
        inner.stats.commands += 1;
        Ok(ResponseHandle {
            inner: Arc::clone(&self.inner),
            token,
            resolved: Arc::new(Mutex::new(None)),
        })
    }

    /// Runs the device for `cycles` fabric cycles (host idle).
    pub fn run_for(&self, cycles: Cycle) {
        self.inner
            .lock()
            .expect("runtime lock poisoned")
            .soc
            .run_for(cycles);
    }

    /// Current fabric cycle.
    pub fn now(&self) -> Cycle {
        self.inner.lock().expect("runtime lock poisoned").soc.now()
    }

    /// Elapsed simulated wall-clock seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.inner
            .lock()
            .expect("runtime lock poisoned")
            .soc
            .elapsed_secs()
    }

    /// Runtime statistics.
    pub fn stats(&self) -> RuntimeStats {
        self.inner.lock().expect("runtime lock poisoned").stats
    }

    /// Borrows the device for direct inspection (stats, tracer, report).
    pub fn with_soc<R>(&self, f: impl FnOnce(&mut SocSim) -> R) -> R {
        f(&mut self.inner.lock().expect("runtime lock poisoned").soc)
    }

    /// Turns the device's gated performance counters on or off (a debug
    /// control register in the real shell; free of host-time cost here).
    pub fn set_profiling(&self, enabled: bool) {
        self.inner
            .lock()
            .expect("runtime lock poisoned")
            .soc
            .set_profiling(enabled);
    }

    /// Sorted flattened counter names — the MMIO counter window's index
    /// space. The real runtime gets this map from the generated platform
    /// header, so reading it costs no device traffic.
    pub fn counter_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("runtime lock poisoned")
            .soc
            .perf()
            .counter_names()
    }

    /// Reads one performance counter by name through the MMIO counter
    /// window — usable mid-run. Costs three MMIO round trips of simulated
    /// host time (select write, then the two data-word reads); the select
    /// write latches the 64-bit value, so the device advancing between the
    /// two reads cannot tear it.
    ///
    /// Returns `None` for a name the window does not expose.
    pub fn read_counter(&self, name: &str) -> Option<u64> {
        let mut inner = self.inner.lock().expect("runtime lock poisoned");
        let link_ns = inner.soc.platform().host_link.mmio_latency_ns;
        inner.advance_ns(link_ns);
        // Resolve the index only after the link delay: counter names
        // materialize lazily as components first touch their stats bags, so
        // advancing the device could shift the window's index space.
        let idx = inner
            .soc
            .perf()
            .counter_names()
            .iter()
            .position(|n| n == name)? as u32;
        inner.soc.mmio_write(MmioRegister::PerfSelect, idx);
        inner.advance_ns(link_ns);
        let lo = u64::from(inner.soc.mmio_read(MmioRegister::PerfDataLo));
        inner.advance_ns(link_ns);
        let hi = u64::from(inner.soc.mmio_read(MmioRegister::PerfDataHi));
        Some((hi << 32) | lo)
    }

    /// Snapshot of every counter (sorted `path/name` pairs, baseline-
    /// subtracted). A host-side bulk read; costs no simulated time.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .expect("runtime lock poisoned")
            .soc
            .perf_counters()
    }

    /// Per-counter difference between the current values and an earlier
    /// [`FpgaHandle::counter_snapshot`] (counters absent from `before`
    /// count from zero).
    pub fn counter_delta(&self, before: &[(String, u64)]) -> Vec<(String, u64)> {
        let base: HashMap<&str, u64> = before.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        self.counter_snapshot()
            .into_iter()
            .map(|(n, v)| {
                let b = base.get(n.as_str()).copied().unwrap_or(0);
                (n, v.saturating_sub(b))
            })
            .collect()
    }

    /// Rebases every counter to zero (snapshot-subtract semantics: the
    /// device-side sources are never written, matching a real PMU whose
    /// counters may be load-bearing).
    pub fn reset_counters(&self) {
        self.inner
            .lock()
            .expect("runtime lock poisoned")
            .soc
            .reset_perf();
    }

    /// Sets the blocking-`get` budget in fabric cycles.
    pub fn set_get_timeout(&self, cycles: Cycle) {
        self.inner
            .lock()
            .expect("runtime lock poisoned")
            .get_timeout_cycles = cycles;
    }

    /// The runtime timing options this handle was opened with.
    pub fn options(&self) -> RuntimeOptions {
        self.inner.lock().expect("runtime lock poisoned").opts
    }

    /// Advances the device while `ns` of host time passes — the primitive a
    /// runtime-server layer (`bserver`) uses to charge its own host-side
    /// costs (lock arbitration, MMIO traffic) against the shared clock.
    pub fn advance_ns(&self, ns: u64) {
        self.inner
            .lock()
            .expect("runtime lock poisoned")
            .advance_ns(ns);
    }

    /// Opens a client session over this handle's runtime server. Sessions
    /// share the device, the allocator, and simulated time (one `SocSim`
    /// behind one server), but keep their own submission statistics — the
    /// multi-tenant shape `bserver` arbitrates between.
    pub fn open_session(&self) -> SessionHandle {
        let id = {
            let mut inner = self.inner.lock().expect("runtime lock poisoned");
            let id = inner.next_session;
            inner.next_session += 1;
            id
        };
        SessionHandle {
            handle: self.clone(),
            id,
            stats: Arc::new(Mutex::new(SessionStats::default())),
        }
    }
}

/// Per-session statistics (see [`FpgaHandle::open_session`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Commands this session submitted.
    pub commands: u64,
    /// Allocations this session performed.
    pub mallocs: u64,
    /// Frees this session performed.
    pub frees: u64,
    /// Bytes currently allocated by this session (post-alignment).
    pub live_bytes: u64,
}

/// One client session over a shared [`FpgaHandle`]: same device, same
/// allocator, same simulated clock, separate bookkeeping. Clone freely —
/// clones share the session.
#[derive(Clone)]
pub struct SessionHandle {
    handle: FpgaHandle,
    id: u32,
    stats: Arc<Mutex<SessionStats>>,
}

impl SessionHandle {
    /// The session's id (dense, in open order).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shared handle this session was opened from.
    pub fn handle(&self) -> &FpgaHandle {
        &self.handle
    }

    /// This session's statistics.
    pub fn stats(&self) -> SessionStats {
        *self.stats.lock().expect("runtime lock poisoned")
    }

    /// Allocates accelerator-visible memory from the shared allocator.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures with request/high-water context.
    pub fn malloc(&self, n_bytes: u64) -> Result<RemotePtr, CallError> {
        let ptr = self.handle.malloc(n_bytes)?;
        let mut stats = self.stats.lock().expect("runtime lock poisoned");
        stats.mallocs += 1;
        stats.live_bytes += ptr.len();
        Ok(ptr)
    }

    /// Releases an allocation back to the shared allocator.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures (double free, foreign pointer).
    pub fn free(&self, ptr: RemotePtr) -> Result<(), CallError> {
        self.handle.free(ptr)?;
        let mut stats = self.stats.lock().expect("runtime lock poisoned");
        stats.frees += 1;
        stats.live_bytes = stats.live_bytes.saturating_sub(ptr.len());
        Ok(())
    }

    /// Writes host data at `ptr + offset` (see [`FpgaHandle::write_at`]).
    pub fn write_at(&self, ptr: RemotePtr, offset: u64, data: &[u8]) {
        self.handle.write_at(ptr, offset, data);
    }

    /// Reads host-visible data at `ptr + offset` (see
    /// [`FpgaHandle::read_at`]).
    pub fn read_at(&self, ptr: RemotePtr, offset: u64, len: usize) -> Vec<u8> {
        self.handle.read_at(ptr, offset, len)
    }

    /// Convenience: write a `u32` slice at offset 0.
    pub fn write_u32_slice(&self, ptr: RemotePtr, values: &[u32]) {
        self.handle.write_u32_slice(ptr, values);
    }

    /// Convenience: read a `u32` slice from offset 0.
    pub fn read_u32_slice(&self, ptr: RemotePtr, count: usize) -> Vec<u32> {
        self.handle.read_u32_slice(ptr, count)
    }

    /// DMA host→device (see [`FpgaHandle::copy_to_fpga`]).
    pub fn copy_to_fpga(&self, ptr: RemotePtr) {
        self.handle.copy_to_fpga(ptr);
    }

    /// DMA device→host (see [`FpgaHandle::copy_from_fpga`]).
    pub fn copy_from_fpga(&self, ptr: RemotePtr) {
        self.handle.copy_from_fpga(ptr);
    }

    /// Sends a command through the shared runtime server (see
    /// [`FpgaHandle::call`]).
    ///
    /// # Errors
    ///
    /// See [`FpgaHandle::call`].
    pub fn call(
        &self,
        system: &str,
        core_idx: u16,
        args: std::collections::BTreeMap<String, u64>,
    ) -> Result<ResponseHandle, CallError> {
        let resp = self.handle.call(system, core_idx, args)?;
        self.stats.lock().expect("runtime lock poisoned").commands += 1;
        Ok(resp)
    }
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.id)
            .field("stats", &*self.stats.lock().expect("runtime lock poisoned"))
            .finish()
    }
}

impl std::fmt::Debug for FpgaHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("runtime lock poisoned");
        f.debug_struct("FpgaHandle")
            .field("platform", &inner.soc.platform().name)
            .field("now", &inner.soc.now())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl ResponseHandle {
    /// Non-blocking check (the paper's `try_get()`), at one MMIO read cost.
    pub fn try_get(&self) -> Option<u64> {
        if let Some(v) = *self.resolved.lock().expect("runtime lock poisoned") {
            return Some(v);
        }
        let mut inner = self.inner.lock().expect("runtime lock poisoned");
        let link_ns = inner.soc.platform().host_link.mmio_latency_ns;
        inner.advance_ns(link_ns);
        let polled = inner.soc.poll(self.token);
        if let Some(v) = polled {
            inner.stats.responses += 1;
            *self.resolved.lock().expect("runtime lock poisoned") = Some(v);
        }
        polled
    }

    /// Blocks (simulated) until the response arrives (the paper's
    /// `get()`), polling the MMIO response FIFO at the configured interval.
    ///
    /// # Errors
    ///
    /// [`CallError::Timeout`] if the cycle budget set via
    /// [`FpgaHandle::set_get_timeout`] is exceeded.
    pub fn get(&self) -> Result<u64, CallError> {
        if let Some(v) = *self.resolved.lock().expect("runtime lock poisoned") {
            return Ok(v);
        }
        let start = self.inner.lock().expect("runtime lock poisoned").soc.now();
        loop {
            if let Some(v) = self.try_get() {
                return Ok(v);
            }
            let mut inner = self.inner.lock().expect("runtime lock poisoned");
            let waited = inner.soc.now() - start;
            if waited > inner.get_timeout_cycles {
                return Err(CallError::Timeout { waited });
            }
            let interval = inner.opts.poll_interval_ns.max(1);
            inner.advance_ns(interval);
        }
    }

    /// The underlying command token.
    pub fn token(&self) -> CommandToken {
        self.token
    }
}

impl std::fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("token", &self.token)
            .field(
                "resolved",
                &self
                    .resolved
                    .lock()
                    .expect("runtime lock poisoned")
                    .is_some(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcore::{
        elaborate, AccelCommandSpec, AcceleratorConfig, AcceleratorCore, CoreContext, FieldType,
        ReadChannelConfig, SystemConfig, WriteChannelConfig,
    };
    use bplatform::Platform;

    /// Minimal streaming doubler core for runtime tests.
    struct DoubleCore {
        remaining: u32,
        active: bool,
    }

    impl AcceleratorCore for DoubleCore {
        fn tick(&mut self, sim: &bsim::SimCtx, ctx: &mut CoreContext) {
            if !self.active {
                if let Some(cmd) = ctx.take_command(sim) {
                    let n = cmd.arg("n") as u32;
                    let addr = cmd.arg("addr");
                    self.remaining = n;
                    self.active = true;
                    ctx.reader("src")
                        .request(addr, u64::from(n) * 4)
                        .expect("idle");
                    ctx.writer("dst")
                        .request(addr, u64::from(n) * 4)
                        .expect("idle");
                }
                return;
            }
            while self.remaining > 0 && ctx.writer("dst").can_push() {
                let Some(v) = ctx.reader("src").pop_u32() else {
                    break;
                };
                ctx.writer("dst").push_u32(v.wrapping_mul(2));
                self.remaining -= 1;
            }
            if self.remaining == 0 && ctx.writer("dst").done() && ctx.respond(sim, 1) {
                self.active = false;
            }
        }
    }

    fn make_handle(platform: &Platform, n_cores: u32) -> FpgaHandle {
        let spec = AccelCommandSpec::new(
            "double",
            vec![
                ("addr".to_owned(), FieldType::Address),
                ("n".to_owned(), FieldType::U(24)),
            ],
        );
        let cfg = AcceleratorConfig::new().with_system(
            SystemConfig::new("Doubler", n_cores, spec, || {
                Box::new(DoubleCore {
                    remaining: 0,
                    active: false,
                })
            })
            .with_read(ReadChannelConfig::new("src", 4))
            .with_write(WriteChannelConfig::new("dst", 4)),
        );
        FpgaHandle::new(elaborate(cfg, platform).expect("elaboration"))
    }

    fn call_args(addr: u64, n: u64) -> std::collections::BTreeMap<String, u64> {
        [("addr".to_owned(), addr), ("n".to_owned(), n)]
            .into_iter()
            .collect()
    }

    #[test]
    fn figure_3c_flow_on_discrete_platform() {
        // The exact sequence of the paper's Figure 3c.
        let handle = make_handle(&Platform::aws_f1(), 1);
        let mem = handle.malloc(1024).unwrap();
        let input: Vec<u32> = (0..256).collect();
        handle.write_u32_slice(mem, &input);
        handle.copy_to_fpga(mem);
        let resp = handle
            .call("Doubler", 0, call_args(mem.device_addr(), 256))
            .unwrap();
        assert_eq!(resp.get().unwrap(), 1);
        handle.copy_from_fpga(mem);
        let out = handle.read_u32_slice(mem, 256);
        let expect: Vec<u32> = input.iter().map(|v| v * 2).collect();
        assert_eq!(out, expect);
        let stats = handle.stats();
        assert_eq!(stats.commands, 1);
        assert_eq!(stats.responses, 1);
        assert!(stats.dma_to_device_bytes >= 1024);
    }

    #[test]
    fn shared_platform_needs_no_dma() {
        let handle = make_handle(&Platform::kria(), 1);
        let mem = handle.malloc(1024).unwrap();
        let input: Vec<u32> = (0..256).map(|v| v * 3).collect();
        handle.write_u32_slice(mem, &input);
        // No copy_to_fpga: the memory is shared and coherent.
        let resp = handle
            .call("Doubler", 0, call_args(mem.device_addr(), 256))
            .unwrap();
        resp.get().unwrap();
        let out = handle.read_u32_slice(mem, 256);
        assert_eq!(out[17], 17 * 3 * 2);
        assert_eq!(handle.stats().dma_to_device_bytes, 0);
    }

    #[test]
    fn discrete_writes_invisible_until_dma() {
        let handle = make_handle(&Platform::aws_f1(), 1);
        let mem = handle.malloc(64).unwrap();
        handle.write_at(mem, 0, &[0xAB; 64]);
        let device_view =
            handle.with_soc(|soc| soc.memory().borrow().read_vec(mem.device_addr(), 64));
        assert_eq!(
            device_view,
            vec![0u8; 64],
            "host write must not leak before DMA"
        );
        handle.copy_to_fpga(mem);
        let device_view =
            handle.with_soc(|soc| soc.memory().borrow().read_vec(mem.device_addr(), 64));
        assert_eq!(device_view, vec![0xAB; 64]);
    }

    #[test]
    fn try_get_is_nonblocking_then_resolves() {
        let handle = make_handle(&Platform::sim(), 1);
        let mem = handle.malloc(4096).unwrap();
        handle.write_u32_slice(mem, &vec![1u32; 1024]);
        let resp = handle
            .call("Doubler", 0, call_args(mem.device_addr(), 1024))
            .unwrap();
        // Immediately after submission the kernel cannot be done.
        assert!(resp.try_get().is_none());
        assert_eq!(resp.get().unwrap(), 1);
        // Subsequent gets return the cached value without advancing time.
        let t = handle.now();
        assert_eq!(resp.get().unwrap(), 1);
        assert_eq!(handle.now(), t);
    }

    #[test]
    fn commands_to_all_cores_overlap() {
        let handle = make_handle(&Platform::sim(), 4);
        let n = 4096u64;
        let mut handles = Vec::new();
        for core in 0..4u16 {
            let mem = handle.malloc(n * 4).unwrap();
            handle.write_u32_slice(mem, &vec![u32::from(core) + 1; n as usize]);
            handle.copy_to_fpga(mem);
            handles.push((
                core,
                mem,
                handle
                    .call("Doubler", core, call_args(mem.device_addr(), n))
                    .unwrap(),
            ));
        }
        for (core, mem, resp) in handles {
            resp.get().unwrap();
            handle.copy_from_fpga(mem);
            let out = handle.read_u32_slice(mem, n as usize);
            assert!(out.iter().all(|&v| v == (u32::from(core) + 1) * 2));
        }
        assert_eq!(handle.stats().responses, 4);
    }

    #[test]
    fn unknown_system_and_bad_core_error() {
        let handle = make_handle(&Platform::sim(), 1);
        assert!(matches!(
            handle.call("Nope", 0, call_args(0, 0)),
            Err(CallError::UnknownSystem(_))
        ));
        assert!(matches!(
            handle.call("Doubler", 7, call_args(0, 0)),
            Err(CallError::Send(_))
        ));
    }

    #[test]
    fn malloc_free_cycle() {
        let handle = make_handle(&Platform::sim(), 1);
        let a = handle.malloc(1 << 20).unwrap();
        handle.free(a).unwrap();
        let b = handle.malloc(1 << 20).unwrap();
        assert_eq!(a.device_addr(), b.device_addr());
        // The stale ptr aliases b's live allocation, so this free succeeds
        // (frees b); the next free of the same address must then fail.
        handle.free(a).unwrap();
        assert!(handle.free(b).is_err(), "double free of the same region");
    }

    #[test]
    fn alloc_errors_carry_request_and_high_water_context() {
        // sim platform: 256 MiB of device memory.
        let handle = make_handle(&Platform::sim(), 1);
        let total = handle.with_soc(|soc| soc.platform().mem_size);
        let big = handle.malloc(total / 2).unwrap();
        let err = handle.malloc(total).unwrap_err();
        match err {
            CallError::Alloc {
                error: AllocError::OutOfMemory { .. },
                requested,
                high_water,
            } => {
                assert_eq!(requested, total, "carries the caller's byte count");
                assert_eq!(
                    high_water,
                    big.len(),
                    "high-water mark reflects the peak at failure time"
                );
            }
            other => panic!("expected contextful Alloc error, got {other:?}"),
        }
        let msg = handle.malloc(total).unwrap_err().to_string();
        assert!(
            msg.contains("requested"),
            "display shows the request: {msg}"
        );
        assert!(msg.contains("high-water"), "display shows the mark: {msg}");
    }

    #[test]
    fn two_sessions_share_the_allocator_without_fragmenting() {
        // Alloc–free–alloc patterns interleaved across two sessions over
        // one SocSim must coalesce back to a fully reusable region: the
        // regression this guards is per-session state leaking into the
        // shared free list.
        let handle = make_handle(&Platform::sim(), 1);
        let s0 = handle.open_session();
        let s1 = handle.open_session();
        assert_ne!(s0.id(), s1.id());

        let a = s0.malloc(8 * 4096).unwrap();
        let b = s1.malloc(4 * 4096).unwrap();
        let c = s0.malloc(4096).unwrap();
        // Free the middle allocation from the *other* session's sibling
        // and re-fill the hole: first-fit must reuse it exactly.
        s1.free(b).unwrap();
        let b2 = s0.malloc(2 * 4096).unwrap();
        assert_eq!(b2.device_addr(), b.device_addr(), "hole reused first-fit");

        // Interleaved teardown in neither allocation nor session order.
        s0.free(a).unwrap();
        s0.free(b2).unwrap();
        s0.free(c).unwrap();

        // After full teardown the whole region must be one coalesced block:
        // a single max-size allocation succeeds again.
        let total = handle.with_soc(|soc| soc.platform().mem_size);
        let whole = handle.malloc(total).unwrap();
        handle.free(whole).unwrap();

        let st0 = s0.stats();
        assert_eq!(st0.mallocs, 3);
        assert_eq!(st0.frees, 3);
        assert_eq!(st0.live_bytes, 0);
        assert_eq!(s1.stats().mallocs, 1);
        assert_eq!(s1.stats().frees, 1);
    }

    #[test]
    fn sessions_share_device_and_clock() {
        // Shared-memory platform: session writes are immediately
        // device-visible, no DMA staging.
        let handle = make_handle(&Platform::kria(), 2);
        let s0 = handle.open_session();
        let s1 = handle.open_session();
        let m0 = s0.malloc(4096).unwrap();
        let m1 = s1.malloc(4096).unwrap();
        s0.write_u32_slice(m0, &[5; 16]);
        s1.write_u32_slice(m1, &[9; 16]);
        let r0 = s0
            .call("Doubler", 0, call_args(m0.device_addr(), 16))
            .unwrap();
        let r1 = s1
            .call("Doubler", 1, call_args(m1.device_addr(), 16))
            .unwrap();
        r0.get().unwrap();
        r1.get().unwrap();
        assert_eq!(s0.read_u32_slice(m0, 16), vec![10; 16]);
        assert_eq!(s1.read_u32_slice(m1, 16), vec![18; 16]);
        assert_eq!(s0.stats().commands, 1);
        assert_eq!(s1.stats().commands, 1);
        // Both sessions observe the same clock (one device underneath).
        assert_eq!(s0.handle().now(), s1.handle().now());
        // The shared handle's aggregate stats see both sessions.
        assert_eq!(handle.stats().commands, 2);
    }

    #[test]
    fn server_lock_serializes_submissions() {
        // Submitting k commands costs at least k × (lock + mmio) of
        // simulated host time even if the device is idle.
        let handle = make_handle(&Platform::aws_f1(), 4);
        let mem = handle.malloc(4096).unwrap();
        handle.copy_to_fpga(mem);
        let t0 = handle.elapsed_secs();
        let mut responses = Vec::new();
        for core in 0..4 {
            responses.push(
                handle
                    .call("Doubler", core, call_args(mem.device_addr(), 1))
                    .unwrap(),
            );
        }
        let t1 = handle.elapsed_secs();
        let link = 800e-9 + 400e-9; // mmio + lock for aws_f1 defaults
        assert!(
            t1 - t0 >= 4.0 * link * 0.9,
            "4 submissions should cost ≥ 4×(lock+mmio): {} vs {}",
            t1 - t0,
            4.0 * link
        );
        for r in responses {
            r.get().unwrap();
        }
    }

    #[test]
    fn host_reads_live_counter_through_mmio_window_mid_run() {
        let handle = make_handle(&Platform::aws_f1(), 1);
        handle.set_profiling(true);
        let n = 200_000u64;
        let mem = handle.malloc(n * 4).unwrap();
        handle.write_u32_slice(mem, &vec![7u32; n as usize]);
        handle.copy_to_fpga(mem);
        let resp = handle
            .call("Doubler", 0, call_args(mem.device_addr(), n))
            .unwrap();

        // Let the kernel make some progress, then sample it while it is
        // still in flight. (Counter names materialize lazily, so the name
        // map is queried after the device has run.)
        handle.run_for(5_000);
        let names = handle.counter_names();
        assert!(names.iter().any(|n| n == "mem0/r_beats"));
        let snap = handle.counter_snapshot();
        let t0 = handle.now();
        let mid = handle
            .read_counter("mem0/r_beats")
            .expect("window exposes the counter");
        assert!(mid > 0, "reader traffic should be visible mid-run");
        assert!(handle.now() > t0, "window access costs simulated MMIO time");
        assert_eq!(handle.read_counter("no/such_counter"), None);

        assert_eq!(resp.get().unwrap(), 1);
        let finished = handle.read_counter("mem0/r_beats").unwrap();
        assert!(finished >= mid);
        let delta = handle.counter_delta(&snap);
        let grew = delta.iter().find(|(n, _)| n == "mem0/r_beats").unwrap().1;
        assert!(grew > 0, "counter must keep advancing after the snapshot");

        handle.reset_counters();
        assert_eq!(
            handle.read_counter("mem0/r_beats"),
            Some(0),
            "reset rebases the window to zero"
        );
    }
}
