//! # bruntime — the Beethoven host runtime
//!
//! The software half of the paper's §II-C: an FPGA management runtime and
//! user library. It owns the composed device ([`bcore::SocSim`]) and gives
//! host code the interfaces of Figure 3c:
//!
//! * [`FpgaHandle::malloc`] — allocate accelerator-visible memory
//!   ([`RemotePtr`]).
//! * [`FpgaHandle::copy_to_fpga`] / [`FpgaHandle::copy_from_fpga`] — DMA on
//!   discrete platforms, no-ops on embedded (shared, coherent) platforms.
//! * [`FpgaHandle::call`] — send a custom command through the runtime
//!   server; returns a [`ResponseHandle`] with `get` / `try_get`.
//!
//! Host-side costs are simulated faithfully against the platform's
//! [`bplatform::HostLink`]: MMIO writes per RoCC beat, the **runtime server
//! lock** serializing all clients, and response polling. These costs are
//! what produce the paper's Figure 6 gap between ideal and measured
//! multi-core throughput — "low-latency operations have much higher
//! contention for the runtime server lock".

#![warn(missing_docs)]

mod alloc;
mod handle;

pub use alloc::{AllocError, DeviceAllocator};
pub use handle::{
    CallError, FpgaHandle, RemotePtr, ResponseHandle, RuntimeOptions, RuntimeStats, SessionHandle,
    SessionStats,
};
