//! # baxi — AXI4 protocol model and DRAM-backed memory controller
//!
//! Models the memory bus the Beethoven fabric talks to (§II-B, §III-A of the
//! paper): the five AXI channels (AR/R/AW/W/B), INCR bursts, *per-ID
//! ordering* (transactions on the same AXI ID must complete in order, which
//! serializes them through the controller), and a configurable number of
//! outstanding transactions.
//!
//! [`AxiMemoryController`] is the slave: it accepts AXI transactions,
//! splits them into single-burst DRAM requests for a [`bdram::DramSystem`],
//! enforces AXI ordering rules on the response path, and moves real bytes
//! through a shared [`bsim::SparseMemory`]. An attached [`bsim::Tracer`]
//! records per-channel events, from which the paper's Figure 5 timelines
//! are regenerated.
//!
//! The crate exists to make the paper's central microbenchmark observation
//! reproducible: *same-ID transactions serialize; spreading a long copy
//! across IDs ("transaction-level parallelism") restores memory-controller
//! parallelism* (§III-A).

#![warn(missing_docs)]

mod controller;
mod port;
mod types;

pub use controller::{AxiMemoryController, ControllerConfig, SharedMemory};
pub use port::{axi_link, axi_link_with_latency, AxiMasterPort, AxiSlavePort, PortDepths};
pub use types::{ArFlit, AwFlit, AxiBurstError, AxiParams, BFlit, RFlit, WFlit};
