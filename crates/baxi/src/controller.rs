//! The AXI memory controller: AXI transactions in, DRAM bursts out.
//!
//! Ordering model (the part that matters for the paper's Figure 4/5):
//!
//! * Transactions with **the same AXI ID** are processed in order, and at
//!   most [`ControllerConfig::same_id_inflight`] of them may have DRAM
//!   traffic in flight at once (default 1 — strict serialization, matching
//!   the behaviour the paper observed from the Xilinx DDR controller).
//! * Transactions with **different IDs** proceed concurrently, bounded only
//!   by `max_outstanding_reads`/`max_outstanding_writes`. This is the
//!   "transaction-level parallelism" Beethoven exploits by striping long
//!   copies across IDs.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

use bdram::{DramRequest, DramSystem};
use bsim::perf::{Counter, CounterSet};
use bsim::{ClockDomain, Component, Cycle, SimCtx, SparseMemory, Stats, Tracer};

use crate::port::AxiSlavePort;
use crate::types::{validate_burst, AxiParams, BFlit, RFlit};

/// Shared handle to the functional memory image. Backed by `Arc<Mutex<..>>`
/// so a controller — and the `Simulation` holding it — stays `Send`; the
/// lock is uncontended within one simulation. The `borrow`/`borrow_mut`
/// accessor names are kept from the earlier `Rc<RefCell<..>>` incarnation.
#[derive(Debug, Clone)]
pub struct SharedMemory(Arc<Mutex<SparseMemory>>);

impl SharedMemory {
    /// Wraps a functional memory image in a shared handle.
    pub fn new(memory: SparseMemory) -> Self {
        Self(Arc::new(Mutex::new(memory)))
    }

    /// Locks the image for reading.
    pub fn borrow(&self) -> MutexGuard<'_, SparseMemory> {
        self.0.lock().unwrap()
    }

    /// Locks the image for writing.
    pub fn borrow_mut(&self) -> MutexGuard<'_, SparseMemory> {
        self.0.lock().unwrap()
    }
}

impl Default for SharedMemory {
    fn default() -> Self {
        Self::new(SparseMemory::new())
    }
}

/// Controller tuning knobs.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Bus parameters (width, ids, burst limits).
    pub axi: AxiParams,
    /// The fabric clock this controller ticks on.
    pub fabric: ClockDomain,
    /// Maximum same-ID transactions with DRAM traffic in flight (per
    /// direction). 1 reproduces the strict-ordering behaviour of the shell
    /// DDR controller; larger values model a reorder buffer.
    pub same_id_inflight: usize,
    /// Maximum concurrent read transactions across all IDs.
    pub max_outstanding_reads: usize,
    /// Maximum concurrent write transactions across all IDs.
    pub max_outstanding_writes: usize,
    /// DRAM sub-requests the controller may hand to the DRAM queue per
    /// fabric cycle (the DRAM command clock usually runs faster).
    pub dram_issue_per_cycle: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            axi: AxiParams::aws_f1(),
            fabric: ClockDomain::from_mhz(250),
            same_id_inflight: 1,
            max_outstanding_reads: 32,
            max_outstanding_writes: 32,
            dram_issue_per_cycle: 4,
        }
    }
}

#[derive(Debug)]
struct ReadTxn {
    id: u32,
    addr: u64,
    beats: u32,
    sub_done: Vec<bool>,
    subs_issued: usize,
    beats_sent: u32,
    accepted_at: Cycle,
}

#[derive(Debug)]
struct WriteTxn {
    id: u32,
    addr: u64,
    beats: u32,
    beats_recv: u32,
    data: Vec<u8>,
    /// Byte-enable mask accumulated from W strobes.
    mask: Vec<bool>,
    subs_total: usize,
    subs_done: usize,
    subs_issued: usize,
    applied: bool,
    accepted_at: Cycle,
}

/// An AXI4 slave backed by a cycle-accurate DRAM model and a functional
/// byte store. Tick it on the fabric clock.
pub struct AxiMemoryController {
    config: ControllerConfig,
    port: AxiSlavePort,
    dram: DramSystem,
    memory: SharedMemory,
    stats: Stats,
    tracer: Tracer,

    read_txns: HashMap<u64, ReadTxn>,
    write_txns: HashMap<u64, WriteTxn>,
    /// Per-ID FIFO of read transaction seqs (response & issue order).
    read_order: HashMap<u32, VecDeque<u64>>,
    /// Per-ID FIFO of write transaction seqs.
    write_order: HashMap<u32, VecDeque<u64>>,
    /// AW-order queue: W beats attach to the front incomplete txn.
    w_data_order: VecDeque<u64>,
    /// The read burst currently streaming on R (bursts don't interleave).
    current_r: Option<u64>,
    /// dram request id -> (is_write, txn seq, sub index)
    dram_pending: HashMap<u64, (bool, u64, usize)>,
    next_seq: u64,
    next_dram_id: u64,
    /// Cycles an R beat was ready but the fabric could not take it.
    /// Detached (never counts) until [`AxiMemoryController::attach_perf`].
    perf_r_backpressure: Counter,
    /// Cycles a B response was ready but the fabric could not take it.
    perf_b_backpressure: Counter,
}

impl AxiMemoryController {
    /// Creates a controller from its config, DRAM model, slave port, and a
    /// shared functional memory.
    pub fn new(
        config: ControllerConfig,
        dram: DramSystem,
        port: AxiSlavePort,
        memory: SharedMemory,
    ) -> Self {
        Self {
            config,
            port,
            dram,
            memory,
            stats: Stats::new(),
            tracer: Tracer::new(),
            read_txns: HashMap::new(),
            write_txns: HashMap::new(),
            read_order: HashMap::new(),
            write_order: HashMap::new(),
            w_data_order: VecDeque::new(),
            current_r: None,
            dram_pending: HashMap::new(),
            next_seq: 0,
            next_dram_id: 0,
            perf_r_backpressure: Counter::detached(),
            perf_b_backpressure: Counter::detached(),
        }
    }

    /// Registers this controller with a perf [`CounterSet`]: the existing
    /// stats bag (beat counts, latency and occupancy histograms) is
    /// attached for merged reads, and the cheap backpressure counters are
    /// re-minted from the set so they obey the registry's enable flag.
    /// DRAM-side stats need a [`bsim::Shared`] handle and are attached by
    /// the elaborator as a pull provider instead.
    pub fn attach_perf(&mut self, set: &CounterSet) {
        set.attach_stats(&self.stats);
        self.perf_r_backpressure = set.counter("r_backpressure_cycles");
        self.perf_b_backpressure = set.counter("b_backpressure_cycles");
    }

    /// The stats bag (cloneable; counters: `ar_accepted`, `r_beats`,
    /// `aw_accepted`, `w_beats`, `b_sent`; histograms
    /// `read_latency_cycles`, `write_latency_cycles`, and the
    /// `read_outstanding`/`write_outstanding` occupancy families, sampled
    /// at accept time, aggregate and per AXI ID).
    pub fn stats(&self) -> Stats {
        self.stats.clone()
    }

    /// The event tracer (enable it to record Figure-5 style timelines).
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The functional memory image.
    pub fn memory(&self) -> SharedMemory {
        self.memory.clone()
    }

    /// DRAM-side statistics.
    pub fn dram_stats(&self) -> bdram::ChannelStats {
        self.dram.stats()
    }

    /// DRAM-side statistics, one entry per channel (for per-channel
    /// bandwidth counters in the perf registry).
    pub fn dram_channel_stats(&self) -> Vec<bdram::ChannelStats> {
        self.dram.per_channel_stats()
    }

    /// Bytes one DRAM sub-burst moves (per-channel byte counters scale
    /// channel read/write counts by this).
    pub fn dram_bytes_per_burst(&self) -> u64 {
        self.dram.bytes_per_burst()
    }

    /// Whether no transactions are in flight.
    pub fn is_idle(&self) -> bool {
        self.read_txns.is_empty() && self.write_txns.is_empty()
    }

    /// Forces the DRAM model's idle-cycle skipping on or off (it defaults
    /// to on unless `BSIM_NAIVE` is set). Cycle-exact either way; exposed
    /// so equivalence tests can pin each mode explicitly.
    pub fn set_event_driven(&mut self, enabled: bool) {
        self.dram.set_event_driven(enabled);
    }

    /// Bytes per DRAM sub-burst.
    fn dram_burst(&self) -> u64 {
        self.dram.bytes_per_burst()
    }

    fn sub_count(&self, bytes: u64) -> usize {
        (bytes.div_ceil(self.dram_burst())) as usize
    }

    /// Which sub-bursts cover AXI beat `beat` of a txn at `addr`.
    fn subs_for_beat(&self, beat: u32) -> (usize, usize) {
        let db = u64::from(self.config.axi.data_bytes);
        let burst = self.dram_burst();
        let lo = (u64::from(beat) * db) / burst;
        let hi = ((u64::from(beat) + 1) * db - 1) / burst;
        (lo as usize, hi as usize)
    }

    /// Position of `seq` in its per-ID order queue (0 = head).
    fn id_position(order: &HashMap<u32, VecDeque<u64>>, id: u32, seq: u64) -> usize {
        order
            .get(&id)
            .and_then(|q| q.iter().position(|&s| s == seq))
            .unwrap_or(usize::MAX)
    }

    fn accept_ar(&mut self, ctx: &SimCtx, now: Cycle) {
        if self.read_txns.len() >= self.config.max_outstanding_reads {
            return;
        }
        let Some(ar) = self.port.ar.recv(ctx, now) else {
            return;
        };
        validate_burst(&self.config.axi, ar.id, ar.addr, ar.beats)
            .unwrap_or_else(|e| panic!("protocol violation on AR: {e}"));
        let bytes = u64::from(ar.beats) * u64::from(self.config.axi.data_bytes);
        let seq = self.next_seq;
        self.next_seq += 1;
        let subs = self.sub_count(bytes);
        self.read_txns.insert(
            seq,
            ReadTxn {
                id: ar.id,
                addr: ar.addr,
                beats: ar.beats,
                sub_done: vec![false; subs],
                subs_issued: 0,
                beats_sent: 0,
                accepted_at: now,
            },
        );
        self.read_order.entry(ar.id).or_default().push_back(seq);
        self.stats.incr("ar_accepted");
        // Occupancy at accept time: per-transaction, so it is identical
        // under the naive and idle-skipping schedulers.
        self.stats
            .record("read_outstanding", self.read_txns.len() as u64);
        self.stats.record(
            &format!("read_outstanding_id{}", ar.id),
            self.read_order[&ar.id].len() as u64,
        );
        self.tracer.record(
            now,
            "AR",
            ar.id,
            format!("addr={:#x} beats={}", ar.addr, ar.beats),
        );
    }

    fn accept_aw(&mut self, ctx: &SimCtx, now: Cycle) {
        if self.write_txns.len() >= self.config.max_outstanding_writes {
            return;
        }
        let Some(aw) = self.port.aw.recv(ctx, now) else {
            return;
        };
        validate_burst(&self.config.axi, aw.id, aw.addr, aw.beats)
            .unwrap_or_else(|e| panic!("protocol violation on AW: {e}"));
        let bytes = u64::from(aw.beats) * u64::from(self.config.axi.data_bytes);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.write_txns.insert(
            seq,
            WriteTxn {
                id: aw.id,
                addr: aw.addr,
                beats: aw.beats,
                beats_recv: 0,
                data: vec![0u8; bytes as usize],
                mask: vec![false; bytes as usize],
                subs_total: self.sub_count(bytes),
                subs_done: 0,
                subs_issued: 0,
                applied: false,
                accepted_at: now,
            },
        );
        self.write_order.entry(aw.id).or_default().push_back(seq);
        self.w_data_order.push_back(seq);
        self.stats.incr("aw_accepted");
        self.stats
            .record("write_outstanding", self.write_txns.len() as u64);
        self.stats.record(
            &format!("write_outstanding_id{}", aw.id),
            self.write_order[&aw.id].len() as u64,
        );
        self.tracer.record(
            now,
            "AW",
            aw.id,
            format!("addr={:#x} beats={}", aw.addr, aw.beats),
        );
    }

    fn accept_w(&mut self, ctx: &SimCtx, now: Cycle) {
        let Some(&seq) = self.w_data_order.front() else {
            // No open write burst: leave beats queued in the channel.
            return;
        };
        let Some(w) = self.port.w.recv(ctx, now) else {
            return;
        };
        let txn = self
            .write_txns
            .get_mut(&seq)
            .expect("w_data_order points at live txn");
        let db = self.config.axi.data_bytes as usize;
        assert_eq!(w.data.len(), db, "W beat width mismatch");
        let off = txn.beats_recv as usize * db;
        match &w.strb {
            None => {
                txn.data[off..off + db].copy_from_slice(&w.data);
                txn.mask[off..off + db].fill(true);
            }
            Some(strb) => {
                assert_eq!(strb.len(), db, "W strobe width mismatch");
                for (i, (&byte, &en)) in w.data.iter().zip(strb.iter()).enumerate() {
                    if en {
                        txn.data[off + i] = byte;
                        txn.mask[off + i] = true;
                    }
                }
            }
        }
        txn.beats_recv += 1;
        let id = txn.id;
        let is_last_beat = txn.beats_recv == txn.beats;
        assert_eq!(
            w.last, is_last_beat,
            "W last flag mismatch: beat {}/{}",
            txn.beats_recv, txn.beats
        );
        if is_last_beat {
            self.w_data_order.pop_front();
        }
        self.stats.incr("w_beats");
        self.tracer
            .record(now, "W", id, if w.last { "last" } else { "beat" });
    }

    /// Issues DRAM traffic for eligible transactions.
    fn issue_dram(&mut self, _now: Cycle) {
        let mut budget = self.config.dram_issue_per_cycle;
        let window = self.config.same_id_inflight;

        // Reads: per-ID windows, oldest first.
        let mut read_seqs: Vec<u64> = self
            .read_txns
            .iter()
            .filter(|(seq, txn)| {
                txn.subs_issued < txn.sub_done.len()
                    && Self::id_position(&self.read_order, txn.id, **seq) < window
            })
            .map(|(seq, _)| *seq)
            .collect();
        read_seqs.sort_unstable();
        for seq in read_seqs {
            if budget == 0 {
                return;
            }
            let burst = self.dram_burst();
            let txn = self.read_txns.get_mut(&seq).expect("seq live");
            while budget > 0 && txn.subs_issued < txn.sub_done.len() {
                let sub = txn.subs_issued;
                let addr = txn.addr + sub as u64 * burst;
                let dram_id = self.next_dram_id;
                if self.dram.enqueue(DramRequest::read(dram_id, addr)).is_err() {
                    return; // DRAM queue full: stop issuing entirely.
                }
                self.next_dram_id += 1;
                self.dram_pending.insert(dram_id, (false, seq, sub));
                txn.subs_issued += 1;
                budget -= 1;
            }
        }

        // Writes: only once all data has arrived (store-and-forward).
        let mut write_seqs: Vec<u64> = self
            .write_txns
            .iter()
            .filter(|(seq, txn)| {
                txn.beats_recv == txn.beats
                    && txn.subs_issued < txn.subs_total
                    && Self::id_position(&self.write_order, txn.id, **seq) < window
            })
            .map(|(seq, _)| *seq)
            .collect();
        write_seqs.sort_unstable();
        for seq in write_seqs {
            if budget == 0 {
                return;
            }
            let burst = self.dram_burst();
            // Apply functional bytes once, when the first DRAM write issues.
            let (apply, addr0, data, mask) = {
                let txn = self.write_txns.get_mut(&seq).expect("seq live");
                if txn.applied {
                    (false, 0, Vec::new(), Vec::new())
                } else {
                    txn.applied = true;
                    (true, txn.addr, txn.data.clone(), txn.mask.clone())
                }
            };
            if apply {
                // Commit contiguous strobed runs so disabled bytes survive.
                let mut mem = self.memory.borrow_mut();
                let mut run_start: Option<usize> = None;
                for i in 0..=mask.len() {
                    let on = i < mask.len() && mask[i];
                    match (run_start, on) {
                        (None, true) => run_start = Some(i),
                        (Some(start), false) => {
                            mem.write(addr0 + start as u64, &data[start..i]);
                            run_start = None;
                        }
                        _ => {}
                    }
                }
            }
            let txn = self.write_txns.get_mut(&seq).expect("seq live");
            while budget > 0 && txn.subs_issued < txn.subs_total {
                let sub = txn.subs_issued;
                let addr = txn.addr + sub as u64 * burst;
                let dram_id = self.next_dram_id;
                if self
                    .dram
                    .enqueue(DramRequest::write(dram_id, addr))
                    .is_err()
                {
                    return;
                }
                self.next_dram_id += 1;
                self.dram_pending.insert(dram_id, (true, seq, sub));
                txn.subs_issued += 1;
                budget -= 1;
            }
        }
    }

    fn collect_dram(&mut self, _now: Cycle) {
        while let Some(done) = self.dram.pop_completion() {
            let (is_write, seq, sub) = self
                .dram_pending
                .remove(&done.id)
                .expect("completion for unknown dram request");
            if is_write {
                if let Some(txn) = self.write_txns.get_mut(&seq) {
                    txn.subs_done += 1;
                }
            } else if let Some(txn) = self.read_txns.get_mut(&seq) {
                txn.sub_done[sub] = true;
            }
        }
    }

    /// Emits at most one R beat per cycle; a burst streams contiguously.
    fn emit_r(&mut self, ctx: &SimCtx, now: Cycle) {
        if !self.port.r.can_send(ctx) {
            // Only counted while reads are in flight, so the controller is
            // dense-ticking in both scheduler modes (skip-invariant).
            if !self.read_txns.is_empty() {
                self.perf_r_backpressure.incr();
            }
            return;
        }
        if self.current_r.is_none() {
            // Pick the oldest head-of-ID txn whose next beat is ready.
            let mut best: Option<u64> = None;
            for (&seq, txn) in &self.read_txns {
                if Self::id_position(&self.read_order, txn.id, seq) != 0 {
                    continue;
                }
                let (lo, hi) = self.subs_for_beat(txn.beats_sent);
                if txn.sub_done[lo..=hi].iter().all(|&d| d) && best.is_none_or(|b| seq < b) {
                    best = Some(seq);
                }
            }
            self.current_r = best;
        }
        let Some(seq) = self.current_r else { return };
        let txn = self.read_txns.get(&seq).expect("current_r live");
        let (lo, hi) = self.subs_for_beat(txn.beats_sent);
        if !txn.sub_done[lo..=hi].iter().all(|&d| d) {
            return; // next beat's data not back from DRAM yet
        }
        let db = u64::from(self.config.axi.data_bytes);
        let beat_addr = txn.addr + u64::from(txn.beats_sent) * db;
        let data = self.memory.borrow().read_vec(beat_addr, db as usize);
        let last = txn.beats_sent + 1 == txn.beats;
        let id = txn.id;
        self.port.r.send(ctx, now, RFlit { id, data, last });
        self.stats.incr("r_beats");
        self.tracer
            .record(now, "R", id, if last { "last" } else { "beat" });
        let txn = self.read_txns.get_mut(&seq).expect("current_r live");
        txn.beats_sent += 1;
        if last {
            let latency = now - txn.accepted_at;
            self.stats.record("read_latency_cycles", latency);
            self.read_txns.remove(&seq);
            let q = self.read_order.get_mut(&id).expect("order queue");
            assert_eq!(q.pop_front(), Some(seq));
            self.current_r = None;
        }
    }

    /// Emits at most one B response per cycle, per-ID in order.
    fn emit_b(&mut self, ctx: &SimCtx, now: Cycle) {
        if !self.port.b.can_send(ctx) {
            if !self.write_txns.is_empty() {
                self.perf_b_backpressure.incr();
            }
            return;
        }
        let mut ready: Option<u64> = None;
        for (&seq, txn) in &self.write_txns {
            if txn.subs_done == txn.subs_total
                && txn.subs_total == txn.subs_issued
                && txn.beats_recv == txn.beats
                && Self::id_position(&self.write_order, txn.id, seq) == 0
                && ready.is_none_or(|b| seq < b)
            {
                ready = Some(seq);
            }
        }
        let Some(seq) = ready else { return };
        let txn = self.write_txns.remove(&seq).expect("seq live");
        let q = self.write_order.get_mut(&txn.id).expect("order queue");
        assert_eq!(q.pop_front(), Some(seq));
        self.port.b.send(ctx, now, BFlit { id: txn.id });
        self.stats.incr("b_sent");
        self.stats
            .record("write_latency_cycles", now - txn.accepted_at);
        self.tracer.record(now, "B", txn.id, "resp");
    }
}

impl Component for AxiMemoryController {
    fn tick(&mut self, ctx: &SimCtx, now: Cycle) {
        self.dram
            .advance_to_ps(self.config.fabric.cycles_to_ps(now));
        self.collect_dram(now);
        self.accept_ar(ctx, now);
        self.accept_aw(ctx, now);
        self.accept_w(ctx, now);
        self.issue_dram(now);
        self.emit_r(ctx, now);
        self.emit_b(ctx, now);
    }

    fn name(&self) -> &str {
        "axi-memory-controller"
    }

    fn next_event(&self, ctx: &SimCtx, now: Cycle) -> Option<Cycle> {
        if !self.is_idle() {
            return Some(now + 1);
        }
        // Idle on the AXI side: wake when a request flit becomes visible...
        let mut wake = Cycle::MAX;
        for vis in [
            self.port.ar.next_visible_at(ctx),
            self.port.aw.next_visible_at(ctx),
            self.port.w.next_visible_at(ctx),
        ]
        .into_iter()
        .flatten()
        {
            wake = wake.min(vis.max(now + 1));
        }
        // ...or when the DRAM clock has scheduled work (refresh): a tick at
        // fabric cycle n advances DRAM to cycles strictly before
        // n * period / tck, so the first fabric cycle covering the DRAM
        // event at `event_ps` is ceil((event_ps + tck) / period). Waking
        // there keeps refresh counts identical to the naive loop at every
        // host observation point.
        let event_ps = self.dram.next_event_ps();
        let tck = self.dram.config().timings.tck_ps;
        let period = self.config.fabric.period_ps();
        let dram_wake = (event_ps.saturating_add(tck)).div_ceil(period).max(now + 1);
        Some(wake.min(dram_wake))
    }

    fn register_wakes(&self, ctx: &SimCtx, waker: &bsim::Waker) {
        // The three request directions are the only external inputs; R/B
        // are our outputs and the DRAM heartbeat in `next_event` already
        // bounds refresh work, so no other hook is needed.
        self.port.ar.wake_on_send(ctx, waker);
        self.port.aw.wake_on_send(ctx, waker);
        self.port.w.wake_on_send(ctx, waker);
    }
}

impl std::fmt::Debug for AxiMemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AxiMemoryController")
            .field("reads_in_flight", &self.read_txns.len())
            .field("writes_in_flight", &self.write_txns.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::{axi_link, AxiMasterPort, PortDepths};
    use crate::types::{ArFlit, AwFlit, WFlit};
    use bdram::DramConfig;
    use bsim::Simulation;

    fn setup(
        cfg: ControllerConfig,
    ) -> (
        AxiMasterPort,
        bsim::Shared<AxiMemoryController>,
        Simulation,
        SharedMemory,
    ) {
        let mut sim = Simulation::new();
        let (master, slave) = axi_link(
            &mut sim,
            PortDepths {
                ar: 16,
                r: 128,
                aw: 16,
                w: 128,
                b: 16,
            },
        );
        let memory = SharedMemory::default();
        let dram = DramSystem::new(DramConfig::ddr4_2400());
        let ctrl = AxiMemoryController::new(cfg, dram, slave, memory.clone());
        let handle = sim.add_shared(ctrl);
        (master, handle, sim, memory)
    }

    #[test]
    fn single_read_returns_correct_data() {
        let (master, ctrl, mut sim, memory) = setup(ControllerConfig::default());
        let payload: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        memory.borrow_mut().write(0x1000, &payload);
        master.ar.send(
            sim.ctx(),
            0,
            ArFlit {
                id: 2,
                addr: 0x1000,
                beats: 4,
            },
        );
        let mut got = Vec::new();
        let mut saw_last = false;
        sim.run_until(10_000, |_| false).ok();
        while let Some(r) = master.r.recv(sim.ctx(), sim.now()) {
            assert_eq!(r.id, 2);
            saw_last = r.last;
            got.extend_from_slice(&r.data);
        }
        assert!(saw_last, "burst should terminate with last");
        assert_eq!(got, payload);
        assert!(sim.get(ctrl).is_idle());
    }

    #[test]
    fn single_write_lands_in_memory_and_acks() {
        let (master, ctrl, mut sim, memory) = setup(ControllerConfig::default());
        master.aw.send(
            sim.ctx(),
            0,
            AwFlit {
                id: 1,
                addr: 0x2000,
                beats: 2,
            },
        );
        for beat in 0..2u8 {
            master
                .w
                .send(sim.ctx(), 0, WFlit::full(vec![beat + 1; 64], beat == 1));
        }
        let b = loop {
            sim.step();
            if let Some(b) = master.b.recv(sim.ctx(), sim.now()) {
                break b;
            }
            assert!(sim.now() < 10_000, "write never acknowledged");
        };
        assert_eq!(b.id, 1);
        assert_eq!(memory.borrow().read_vec(0x2000, 64), vec![1u8; 64]);
        assert_eq!(memory.borrow().read_vec(0x2040, 64), vec![2u8; 64]);
        assert!(sim.get(ctrl).is_idle());
    }

    #[test]
    fn strobed_write_touches_only_enabled_bytes() {
        let (master, _ctrl, mut sim, memory) = setup(ControllerConfig::default());
        memory.borrow_mut().write(0x3000, &[0xFFu8; 64]);
        let mut strb = vec![false; 64];
        strb[0] = true;
        strb[63] = true;
        master.aw.send(
            sim.ctx(),
            0,
            AwFlit {
                id: 0,
                addr: 0x3000,
                beats: 1,
            },
        );
        master.w.send(
            sim.ctx(),
            0,
            WFlit {
                data: vec![0xAA; 64],
                strb: Some(strb),
                last: true,
            },
        );
        loop {
            sim.step();
            if master.b.recv(sim.ctx(), sim.now()).is_some() {
                break;
            }
            assert!(sim.now() < 10_000);
        }
        let out = memory.borrow().read_vec(0x3000, 64);
        assert_eq!(out[0], 0xAA);
        assert_eq!(out[63], 0xAA);
        assert_eq!(out[1], 0xFF);
    }

    /// The paper's §III-A observation: four 16-beat reads on one ID finish
    /// slower than the same reads striped across four IDs.
    #[test]
    fn multi_id_reads_beat_same_id_reads() {
        let run = |ids: [u32; 4]| -> Cycle {
            let (master, _ctrl, mut sim, _memory) = setup(ControllerConfig::default());
            for (i, id) in ids.into_iter().enumerate() {
                master.ar.send(
                    sim.ctx(),
                    0,
                    ArFlit {
                        id,
                        addr: 0x10000 + i as u64 * 1024,
                        beats: 16,
                    },
                );
            }
            let mut lasts = 0;
            let mut finish = 0;
            while lasts < 4 {
                sim.step();
                while let Some(r) = master.r.recv(sim.ctx(), sim.now()) {
                    if r.last {
                        lasts += 1;
                        finish = sim.now();
                    }
                }
                assert!(sim.now() < 100_000, "reads never finished");
            }
            finish
        };
        let same_id = run([0, 0, 0, 0]);
        let multi_id = run([0, 1, 2, 3]);
        assert!(
            multi_id < same_id,
            "multi-ID ({multi_id} cycles) should beat same-ID ({same_id} cycles)"
        );
    }

    #[test]
    fn read_your_write() {
        let (master, _ctrl, mut sim, _memory) = setup(ControllerConfig::default());
        master.aw.send(
            sim.ctx(),
            0,
            AwFlit {
                id: 0,
                addr: 0x4000,
                beats: 1,
            },
        );
        master
            .w
            .send(sim.ctx(), 0, WFlit::full(vec![7u8; 64], true));
        loop {
            sim.step();
            if master.b.recv(sim.ctx(), sim.now()).is_some() {
                break;
            }
            assert!(sim.now() < 10_000);
        }
        master.ar.send(
            sim.ctx(),
            sim.now(),
            ArFlit {
                id: 0,
                addr: 0x4000,
                beats: 1,
            },
        );
        loop {
            sim.step();
            if let Some(r) = master.r.recv(sim.ctx(), sim.now()) {
                assert_eq!(r.data, vec![7u8; 64]);
                break;
            }
            assert!(sim.now() < 20_000);
        }
    }

    #[test]
    #[should_panic(expected = "protocol violation")]
    fn oversized_burst_panics() {
        let (master, _ctrl, mut sim, _memory) = setup(ControllerConfig::default());
        master.ar.send(
            sim.ctx(),
            0,
            ArFlit {
                id: 0,
                addr: 0,
                beats: 65,
            },
        );
        sim.run_for(5);
    }

    #[test]
    fn stats_count_traffic() {
        let (master, ctrl, mut sim, _memory) = setup(ControllerConfig::default());
        master.ar.send(
            sim.ctx(),
            0,
            ArFlit {
                id: 0,
                addr: 0,
                beats: 4,
            },
        );
        let mut lasts = 0;
        while lasts < 1 {
            sim.step();
            while let Some(r) = master.r.recv(sim.ctx(), sim.now()) {
                if r.last {
                    lasts += 1;
                }
            }
            assert!(sim.now() < 10_000);
        }
        let stats = sim.get(ctrl).stats();
        assert_eq!(stats.get("ar_accepted"), 1);
        assert_eq!(stats.get("r_beats"), 4);
        assert!(stats.histogram("read_latency_cycles").unwrap().count() == 1);
    }

    #[test]
    fn occupancy_histograms_track_outstanding_reads() {
        let (master, ctrl, mut sim, _memory) = setup(ControllerConfig::default());
        for i in 0..4u32 {
            master.ar.send(
                sim.ctx(),
                0,
                ArFlit {
                    id: i,
                    addr: u64::from(i) * 4096,
                    beats: 4,
                },
            );
        }
        let mut lasts = 0;
        while lasts < 4 {
            sim.step();
            while let Some(r) = master.r.recv(sim.ctx(), sim.now()) {
                lasts += u64::from(r.last);
            }
            assert!(sim.now() < 100_000);
        }
        let stats = sim.get(ctrl).stats();
        let occ = stats.histogram("read_outstanding").unwrap();
        assert_eq!(occ.count(), 4, "one occupancy sample per accepted AR");
        assert_eq!(occ.max(), Some(4), "all four reads overlapped");
        let per_id = stats.histogram("read_outstanding_id2").unwrap();
        assert_eq!(per_id.count(), 1);
        assert_eq!(per_id.max(), Some(1));
    }

    #[test]
    fn backpressure_counter_counts_only_when_enabled() {
        use bsim::PerfRegistry;
        // A tiny R queue the host never drains forces backpressure.
        let mut sim = Simulation::new();
        let (master, slave) = axi_link(
            &mut sim,
            PortDepths {
                ar: 16,
                r: 1,
                aw: 16,
                w: 16,
                b: 16,
            },
        );
        let memory = SharedMemory::default();
        let dram = DramSystem::new(DramConfig::ddr4_2400());
        let mut ctrl = AxiMemoryController::new(ControllerConfig::default(), dram, slave, memory);
        let perf = PerfRegistry::new();
        ctrl.attach_perf(&perf.set("mem0"));
        perf.set_enabled(true);
        sim.add_shared(ctrl);
        master.ar.send(
            sim.ctx(),
            0,
            ArFlit {
                id: 0,
                addr: 0,
                beats: 8,
            },
        );
        sim.run_for(5_000);
        let stalled = perf.counter("mem0/r_backpressure_cycles").unwrap();
        assert!(stalled > 0, "an undrained R queue must register stalls");
        assert_eq!(perf.counter("mem0/ar_accepted"), Some(1));
    }

    #[test]
    fn tracer_records_channel_events() {
        let (master, ctrl, mut sim, _memory) = setup(ControllerConfig::default());
        sim.get(ctrl).tracer().set_enabled(true);
        master.ar.send(
            sim.ctx(),
            0,
            ArFlit {
                id: 3,
                addr: 0,
                beats: 2,
            },
        );
        let mut done = false;
        while !done {
            sim.step();
            while let Some(r) = master.r.recv(sim.ctx(), sim.now()) {
                done |= r.last;
            }
            assert!(sim.now() < 10_000);
        }
        let tracer = sim.get(ctrl).tracer();
        assert_eq!(tracer.events_on("AR").len(), 1);
        assert_eq!(tracer.events_on("R").len(), 2);
    }
}
