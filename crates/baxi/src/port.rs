//! Channel bundles tying the five AXI channels together.

use bsim::{Receiver, Sender, Simulation};

use crate::types::{ArFlit, AwFlit, BFlit, RFlit, WFlit};

/// Queue depths for each AXI channel of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortDepths {
    /// AR channel depth (outstanding read requests in the wire queue).
    pub ar: usize,
    /// R channel depth (read data beats buffered).
    pub r: usize,
    /// AW channel depth.
    pub aw: usize,
    /// W channel depth (write data beats buffered).
    pub w: usize,
    /// B channel depth.
    pub b: usize,
}

impl Default for PortDepths {
    fn default() -> Self {
        Self {
            ar: 4,
            r: 16,
            aw: 4,
            w: 16,
            b: 4,
        }
    }
}

/// The master side of an AXI link: drives AR/AW/W, receives R/B.
#[derive(Debug, Clone, Copy)]
pub struct AxiMasterPort {
    /// Read-address channel (out).
    pub ar: Sender<ArFlit>,
    /// Read-data channel (in).
    pub r: Receiver<RFlit>,
    /// Write-address channel (out).
    pub aw: Sender<AwFlit>,
    /// Write-data channel (out).
    pub w: Sender<WFlit>,
    /// Write-response channel (in).
    pub b: Receiver<BFlit>,
}

/// The slave side of an AXI link: receives AR/AW/W, drives R/B.
#[derive(Debug, Clone, Copy)]
pub struct AxiSlavePort {
    /// Read-address channel (in).
    pub ar: Receiver<ArFlit>,
    /// Read-data channel (out).
    pub r: Sender<RFlit>,
    /// Write-address channel (in).
    pub aw: Receiver<AwFlit>,
    /// Write-data channel (in).
    pub w: Receiver<WFlit>,
    /// Write-response channel (out).
    pub b: Sender<BFlit>,
}

/// Creates a master/slave pair of AXI port bundles connected by bounded
/// channels (owned by `sim`) with the given depths.
pub fn axi_link(sim: &mut Simulation, depths: PortDepths) -> (AxiMasterPort, AxiSlavePort) {
    axi_link_with_latency(sim, depths, 1)
}

/// Like [`axi_link`] but with `latency` cycles of wire delay on every
/// channel — how the elaborator injects NoC traversal latency between a
/// core's memory ports and the interconnect. Channel depths should be at
/// least `latency` to sustain full throughput.
pub fn axi_link_with_latency(
    sim: &mut Simulation,
    depths: PortDepths,
    latency: u64,
) -> (AxiMasterPort, AxiSlavePort) {
    let (ar_tx, ar_rx) = sim.channel_with_latency(depths.ar.max(latency as usize), latency);
    let (r_tx, r_rx) = sim.channel_with_latency(depths.r.max(latency as usize), latency);
    let (aw_tx, aw_rx) = sim.channel_with_latency(depths.aw.max(latency as usize), latency);
    let (w_tx, w_rx) = sim.channel_with_latency(depths.w.max(latency as usize), latency);
    let (b_tx, b_rx) = sim.channel_with_latency(depths.b.max(latency as usize), latency);
    (
        AxiMasterPort {
            ar: ar_tx,
            r: r_rx,
            aw: aw_tx,
            w: w_tx,
            b: b_rx,
        },
        AxiSlavePort {
            ar: ar_rx,
            r: r_tx,
            aw: aw_rx,
            w: w_rx,
            b: b_tx,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_moves_flits_with_one_cycle_latency() {
        let mut sim = Simulation::new();
        let (master, slave) = axi_link(&mut sim, PortDepths::default());
        let ctx = sim.ctx();
        master.ar.send(
            ctx,
            0,
            ArFlit {
                id: 1,
                addr: 0x40,
                beats: 4,
            },
        );
        assert!(slave.ar.recv(ctx, 0).is_none(), "not visible same cycle");
        let flit = slave.ar.recv(ctx, 1).expect("visible next cycle");
        assert_eq!(flit.id, 1);
        slave.b.send(ctx, 1, BFlit { id: 1 });
        assert_eq!(master.b.recv(ctx, 2), Some(BFlit { id: 1 }));
    }

    #[test]
    fn depths_bound_each_channel() {
        let mut sim = Simulation::new();
        let (master, _slave) = axi_link(
            &mut sim,
            PortDepths {
                ar: 1,
                r: 1,
                aw: 1,
                w: 1,
                b: 1,
            },
        );
        let ctx = sim.ctx();
        master.ar.send(
            ctx,
            0,
            ArFlit {
                id: 0,
                addr: 0,
                beats: 1,
            },
        );
        assert!(!master.ar.can_send(ctx));
    }
}
