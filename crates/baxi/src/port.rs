//! Channel bundles tying the five AXI channels together.

use bsim::{Receiver, Sender};

use crate::types::{ArFlit, AwFlit, BFlit, RFlit, WFlit};

/// Queue depths for each AXI channel of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortDepths {
    /// AR channel depth (outstanding read requests in the wire queue).
    pub ar: usize,
    /// R channel depth (read data beats buffered).
    pub r: usize,
    /// AW channel depth.
    pub aw: usize,
    /// W channel depth (write data beats buffered).
    pub w: usize,
    /// B channel depth.
    pub b: usize,
}

impl Default for PortDepths {
    fn default() -> Self {
        Self {
            ar: 4,
            r: 16,
            aw: 4,
            w: 16,
            b: 4,
        }
    }
}

/// The master side of an AXI link: drives AR/AW/W, receives R/B.
#[derive(Debug)]
pub struct AxiMasterPort {
    /// Read-address channel (out).
    pub ar: Sender<ArFlit>,
    /// Read-data channel (in).
    pub r: Receiver<RFlit>,
    /// Write-address channel (out).
    pub aw: Sender<AwFlit>,
    /// Write-data channel (out).
    pub w: Sender<WFlit>,
    /// Write-response channel (in).
    pub b: Receiver<BFlit>,
}

/// The slave side of an AXI link: receives AR/AW/W, drives R/B.
#[derive(Debug)]
pub struct AxiSlavePort {
    /// Read-address channel (in).
    pub ar: Receiver<ArFlit>,
    /// Read-data channel (out).
    pub r: Sender<RFlit>,
    /// Write-address channel (in).
    pub aw: Receiver<AwFlit>,
    /// Write-data channel (in).
    pub w: Receiver<WFlit>,
    /// Write-response channel (out).
    pub b: Sender<BFlit>,
}

/// Creates a master/slave pair of AXI port bundles connected by bounded
/// channels with the given depths.
pub fn axi_link(depths: PortDepths) -> (AxiMasterPort, AxiSlavePort) {
    axi_link_with_latency(depths, 1)
}

/// Like [`axi_link`] but with `latency` cycles of wire delay on every
/// channel — how the elaborator injects NoC traversal latency between a
/// core's memory ports and the interconnect. Channel depths should be at
/// least `latency` to sustain full throughput.
pub fn axi_link_with_latency(depths: PortDepths, latency: u64) -> (AxiMasterPort, AxiSlavePort) {
    use bsim::channel_with_latency as cwl;
    let (ar_tx, ar_rx) = cwl(depths.ar.max(latency as usize), latency);
    let (r_tx, r_rx) = cwl(depths.r.max(latency as usize), latency);
    let (aw_tx, aw_rx) = cwl(depths.aw.max(latency as usize), latency);
    let (w_tx, w_rx) = cwl(depths.w.max(latency as usize), latency);
    let (b_tx, b_rx) = cwl(depths.b.max(latency as usize), latency);
    (
        AxiMasterPort {
            ar: ar_tx,
            r: r_rx,
            aw: aw_tx,
            w: w_tx,
            b: b_rx,
        },
        AxiSlavePort {
            ar: ar_rx,
            r: r_tx,
            aw: aw_rx,
            w: w_rx,
            b: b_tx,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_moves_flits_with_one_cycle_latency() {
        let (master, slave) = axi_link(PortDepths::default());
        master.ar.send(
            0,
            ArFlit {
                id: 1,
                addr: 0x40,
                beats: 4,
            },
        );
        assert!(slave.ar.recv(0).is_none(), "not visible same cycle");
        let flit = slave.ar.recv(1).expect("visible next cycle");
        assert_eq!(flit.id, 1);
        slave.b.send(1, BFlit { id: 1 });
        assert_eq!(master.b.recv(2), Some(BFlit { id: 1 }));
    }

    #[test]
    fn depths_bound_each_channel() {
        let (master, _slave) = axi_link(PortDepths {
            ar: 1,
            r: 1,
            aw: 1,
            w: 1,
            b: 1,
        });
        master.ar.send(
            0,
            ArFlit {
                id: 0,
                addr: 0,
                beats: 1,
            },
        );
        assert!(!master.ar.can_send());
    }
}
