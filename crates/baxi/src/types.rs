//! AXI4 flit types and bus parameters.

use serde::{Deserialize, Serialize};

/// Static parameters of an AXI bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxiParams {
    /// Data bus width in bytes per beat (the AWS F1 shell exposes 64).
    pub data_bytes: u32,
    /// Number of ID bits (⇒ `1 << id_bits` distinct IDs).
    pub id_bits: u32,
    /// Address width in bits.
    pub addr_bits: u32,
    /// Maximum beats per burst the slave accepts (AXI4 allows 256; the
    /// Xilinx DDR controller recommends 64 for full throughput).
    pub max_burst_beats: u32,
}

impl AxiParams {
    /// The AWS F1 shell's DDR-facing AXI: 512-bit data, 16 IDs, 64-bit
    /// addresses, 64-beat bursts.
    pub fn aws_f1() -> Self {
        Self {
            data_bytes: 64,
            id_bits: 4,
            addr_bits: 64,
            max_burst_beats: 64,
        }
    }

    /// A Zynq/Kria HP port: 128-bit data, 6 IDs bits, 40-bit addresses.
    pub fn kria_hp() -> Self {
        Self {
            data_bytes: 16,
            id_bits: 6,
            addr_bits: 40,
            max_burst_beats: 64,
        }
    }

    /// Number of distinct AXI IDs.
    pub fn num_ids(&self) -> u32 {
        1 << self.id_bits
    }

    /// Maximum bytes a single burst can move.
    pub fn max_burst_bytes(&self) -> u64 {
        u64::from(self.data_bytes) * u64::from(self.max_burst_beats)
    }
}

impl Default for AxiParams {
    fn default() -> Self {
        Self::aws_f1()
    }
}

/// Errors from validating a burst against [`AxiParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxiBurstError {
    /// Burst length exceeds `max_burst_beats`.
    TooManyBeats {
        /// Requested beats.
        beats: u32,
        /// Allowed maximum.
        max: u32,
    },
    /// ID out of range for `id_bits`.
    BadId {
        /// Requested id.
        id: u32,
        /// Number of valid ids.
        num_ids: u32,
    },
    /// Burst crosses the AXI 4 KiB boundary.
    Crosses4k {
        /// Start address.
        addr: u64,
        /// Bytes in the burst.
        bytes: u64,
    },
    /// Address is not beat-aligned.
    Misaligned {
        /// Start address.
        addr: u64,
        /// Required alignment.
        align: u32,
    },
}

impl std::fmt::Display for AxiBurstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiBurstError::TooManyBeats { beats, max } => {
                write!(f, "burst of {beats} beats exceeds maximum of {max}")
            }
            AxiBurstError::BadId { id, num_ids } => {
                write!(f, "axi id {id} out of range (bus has {num_ids} ids)")
            }
            AxiBurstError::Crosses4k { addr, bytes } => {
                write!(
                    f,
                    "burst at {addr:#x} of {bytes} bytes crosses a 4KiB boundary"
                )
            }
            AxiBurstError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} not aligned to {align}-byte beat")
            }
        }
    }
}

impl std::error::Error for AxiBurstError {}

/// A read-address (AR) flit: one read burst request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArFlit {
    /// Transaction ID.
    pub id: u32,
    /// Start byte address (beat aligned).
    pub addr: u64,
    /// Beats in the burst (AXI `ARLEN + 1`).
    pub beats: u32,
}

/// A read-data (R) flit: one beat of read data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RFlit {
    /// Transaction ID this beat belongs to.
    pub id: u32,
    /// One beat of data (`data_bytes` long).
    pub data: Vec<u8>,
    /// Whether this is the final beat of the burst.
    pub last: bool,
}

/// A write-address (AW) flit: one write burst request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AwFlit {
    /// Transaction ID.
    pub id: u32,
    /// Start byte address (beat aligned).
    pub addr: u64,
    /// Beats in the burst (AXI `AWLEN + 1`).
    pub beats: u32,
}

/// A write-data (W) flit: one beat of write data.
///
/// Note W carries no ID in AXI4: write data arrives in AW order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WFlit {
    /// One beat of data (`data_bytes` long).
    pub data: Vec<u8>,
    /// Byte-enable mask; `None` means all bytes valid.
    pub strb: Option<Vec<bool>>,
    /// Whether this is the final beat of the burst.
    pub last: bool,
}

impl WFlit {
    /// A full-width beat with all bytes enabled.
    pub fn full(data: Vec<u8>, last: bool) -> Self {
        Self {
            data,
            strb: None,
            last,
        }
    }
}

/// A write-response (B) flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BFlit {
    /// Transaction ID being acknowledged.
    pub id: u32,
}

/// Validates a burst request against the bus parameters.
///
/// # Errors
///
/// See [`AxiBurstError`] for each rejected condition.
pub fn validate_burst(
    params: &AxiParams,
    id: u32,
    addr: u64,
    beats: u32,
) -> Result<(), AxiBurstError> {
    if beats == 0 || beats > params.max_burst_beats {
        return Err(AxiBurstError::TooManyBeats {
            beats,
            max: params.max_burst_beats,
        });
    }
    if id >= params.num_ids() {
        return Err(AxiBurstError::BadId {
            id,
            num_ids: params.num_ids(),
        });
    }
    if !addr.is_multiple_of(u64::from(params.data_bytes)) {
        return Err(AxiBurstError::Misaligned {
            addr,
            align: params.data_bytes,
        });
    }
    let bytes = u64::from(beats) * u64::from(params.data_bytes);
    if (addr & !0xFFF) != ((addr + bytes - 1) & !0xFFF) {
        return Err(AxiBurstError::Crosses4k { addr, bytes });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_f1_params() {
        let p = AxiParams::aws_f1();
        assert_eq!(p.num_ids(), 16);
        assert_eq!(p.max_burst_bytes(), 4096);
    }

    #[test]
    fn validate_accepts_legal_burst() {
        let p = AxiParams::aws_f1();
        assert!(validate_burst(&p, 3, 0x1000, 64).is_ok());
    }

    #[test]
    fn validate_rejects_zero_and_oversize_beats() {
        let p = AxiParams::aws_f1();
        assert!(matches!(
            validate_burst(&p, 0, 0, 0),
            Err(AxiBurstError::TooManyBeats { .. })
        ));
        assert!(matches!(
            validate_burst(&p, 0, 0, 65),
            Err(AxiBurstError::TooManyBeats { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_id() {
        let p = AxiParams::aws_f1();
        assert!(matches!(
            validate_burst(&p, 16, 0, 1),
            Err(AxiBurstError::BadId { .. })
        ));
    }

    #[test]
    fn validate_rejects_4k_crossing() {
        let p = AxiParams::aws_f1();
        // 64 beats × 64 B = 4096 B starting at 0x40 crosses 0x1000.
        assert!(matches!(
            validate_burst(&p, 0, 0x40, 64),
            Err(AxiBurstError::Crosses4k { .. })
        ));
    }

    #[test]
    fn validate_rejects_misaligned() {
        let p = AxiParams::aws_f1();
        assert!(matches!(
            validate_burst(&p, 0, 0x21, 1),
            Err(AxiBurstError::Misaligned { .. })
        ));
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = AxiBurstError::TooManyBeats {
            beats: 100,
            max: 64,
        };
        assert!(e.to_string().contains("100"));
    }
}
