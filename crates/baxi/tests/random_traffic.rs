//! Property tests: arbitrary interleaved AXI read/write traffic through
//! the controller must behave like an ideal memory (reads observe the
//! most recent completed write), and every transaction must complete with
//! protocol-correct framing.

use std::collections::HashMap;

use baxi::{
    axi_link, ArFlit, AwFlit, AxiMasterPort, AxiMemoryController, ControllerConfig, PortDepths,
    SharedMemory, WFlit,
};
use bdram::{DramConfig, DramSystem};
use bsim::Simulation;
use proptest::prelude::*;

struct Rig {
    sim: Simulation,
    master: AxiMasterPort,
}

fn rig() -> (Rig, SharedMemory) {
    let mut sim = Simulation::new();
    let (master, slave) = axi_link(
        &mut sim,
        PortDepths {
            ar: 16,
            r: 256,
            aw: 16,
            w: 256,
            b: 16,
        },
    );
    let memory = SharedMemory::default();
    let ctrl = AxiMemoryController::new(
        ControllerConfig::default(),
        DramSystem::new(DramConfig::ddr4_2400()),
        slave,
        memory.clone(),
    );
    sim.add(ctrl);
    (Rig { sim, master }, memory)
}

/// One generated operation over a small block-addressed space.
#[derive(Debug, Clone)]
enum Op {
    /// Write `beats` beats of `fill` starting at block `block`.
    Write { block: u8, beats: u8, fill: u8 },
    /// Read `beats` beats from block `block`.
    Read { block: u8, beats: u8, id: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 1u8..8, any::<u8>()).prop_map(|(block, beats, fill)| Op::Write {
            block,
            beats,
            fill
        }),
        (0u8..16, 1u8..8, 0u8..4).prop_map(|(block, beats, id)| Op::Read { block, beats, id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn controller_behaves_like_ideal_memory(ops in proptest::collection::vec(op_strategy(), 1..20)) {
        let (mut rig, _memory) = rig();
        // A software model of what each byte should hold.
        let mut model: HashMap<u64, u8> = HashMap::new();
        let base = 0x100_0000u64;

        for (op_idx, op) in ops.iter().enumerate() {
            match *op {
                Op::Write { block, beats, fill } => {
                    let addr = base + u64::from(block) * 4096;
                    rig.master.aw.send(rig.sim.ctx(), rig.sim.now(), AwFlit { id: 0, addr, beats: u32::from(beats) });
                    // Feed beats as channel space allows while ticking.
                    let mut sent = 0u8;
                    let mut acked = false;
                    let mut guard = 0;
                    while !acked {
                        while sent < beats && rig.master.w.can_send(rig.sim.ctx()) {
                            let value = fill.wrapping_add(sent);
                            rig.master.w.send(
                                rig.sim.ctx(),
                                rig.sim.now(),
                                WFlit::full(vec![value; 64], sent + 1 == beats),
                            );
                            for b in 0..64u64 {
                                model.insert(addr + u64::from(sent) * 64 + b, value);
                            }
                            sent += 1;
                        }
                        rig.sim.step();
                        if rig.master.b.recv(rig.sim.ctx(), rig.sim.now()).is_some() {
                            acked = true;
                        }
                        guard += 1;
                        prop_assert!(guard < 100_000, "write {op_idx} never acknowledged");
                    }
                }
                Op::Read { block, beats, id } => {
                    let addr = base + u64::from(block) * 4096;
                    rig.master.ar.send(
                        rig.sim.ctx(),
                        rig.sim.now(),
                        ArFlit { id: u32::from(id), addr, beats: u32::from(beats) },
                    );
                    let mut got: Vec<u8> = Vec::new();
                    let mut last_seen = false;
                    let mut guard = 0;
                    while !last_seen {
                        rig.sim.step();
                        while let Some(r) = rig.master.r.recv(rig.sim.ctx(), rig.sim.now()) {
                            prop_assert_eq!(r.id, u32::from(id));
                            got.extend_from_slice(&r.data);
                            last_seen |= r.last;
                        }
                        guard += 1;
                        prop_assert!(guard < 100_000, "read {op_idx} never finished");
                    }
                    prop_assert_eq!(got.len(), usize::from(beats) * 64, "beat count framing");
                    for (i, &byte) in got.iter().enumerate() {
                        let expect = model.get(&(addr + i as u64)).copied().unwrap_or(0);
                        prop_assert_eq!(byte, expect, "byte {} of read {}", i, op_idx);
                    }
                }
            }
        }
    }
}
