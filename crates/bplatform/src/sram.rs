//! ASIC SRAM macro compilation: cascading and banking library cells.
//!
//! ASIC toolchains require SRAM macros to be instantiated by hand from a
//! technology library. Beethoven provides "a memory compiler-like utility
//! that cascades and banks the SRAM cells available in the technology
//! library to produce the memory requested by the developer" (§II-D).

use serde::{Deserialize, Serialize};

/// One SRAM macro shape available in a technology library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    /// Library cell name.
    pub name: String,
    /// Words per macro.
    pub depth: u64,
    /// Bits per word.
    pub width_bits: u64,
    /// Area in square micrometres (single-port variant).
    pub area_um2: f64,
    /// Access ports supported by the macro itself.
    pub ports: u32,
}

impl SramMacro {
    /// Bits stored by one macro instance.
    pub fn bits(&self) -> u64 {
        self.depth * self.width_bits
    }
}

/// A compiled memory: which macro, arranged how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramPlan {
    /// Chosen macro.
    pub macro_cell: SramMacro,
    /// Depth-wise banks (address-decoded groups).
    pub banks: u64,
    /// Width-wise cascade (macros abutted to widen the word).
    pub cascade: u64,
    /// Total macro instances (`banks × cascade`).
    pub instances: u64,
    /// Estimated area in square micrometres, including port multiplier and
    /// banking mux overhead.
    pub area_um2: f64,
    /// Extra cycles of access latency added by bank decoding.
    pub extra_latency: u64,
}

/// Errors from [`SramCompiler::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SramError {
    /// No macro in the library can implement the request.
    NoViableMacro {
        /// Requested depth.
        depth: u64,
        /// Requested width.
        width_bits: u64,
    },
    /// Zero-sized request.
    EmptyRequest,
}

impl std::fmt::Display for SramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SramError::NoViableMacro { depth, width_bits } => {
                write!(
                    f,
                    "no library macro can implement a {depth}x{width_bits}b memory"
                )
            }
            SramError::EmptyRequest => write!(f, "memory request has zero depth or width"),
        }
    }
}

impl std::error::Error for SramError {}

/// A memory compiler over a macro library.
#[derive(Debug, Clone)]
pub struct SramCompiler {
    macros: Vec<SramMacro>,
    /// Area multiplier for each port beyond the macro's native count.
    pub extra_port_area_factor: f64,
}

impl SramCompiler {
    /// Creates a compiler over an explicit library.
    pub fn new(macros: Vec<SramMacro>) -> Self {
        Self {
            macros,
            extra_port_area_factor: 1.8,
        }
    }

    /// An ASAP7-flavoured library (areas extrapolated from the predictive
    /// PDK's published SRAM studies; shapes typical of academic compilers).
    pub fn asap7() -> Self {
        let m = |name: &str, depth, width, area| SramMacro {
            name: name.to_owned(),
            depth,
            width_bits: width,
            area_um2: area,
            ports: 1,
        };
        Self::new(vec![
            m("sram_64x32", 64, 32, 180.0),
            m("sram_256x32", 256, 32, 520.0),
            m("sram_256x64", 256, 64, 980.0),
            m("sram_512x64", 512, 64, 1_750.0),
            m("sram_1024x32", 1024, 32, 1_700.0),
            m("sram_1024x64", 1024, 64, 3_200.0),
            m("sram_2048x64", 2048, 64, 6_100.0),
        ])
    }

    /// The macro shapes available.
    pub fn macros(&self) -> &[SramMacro] {
        &self.macros
    }

    /// Compiles a `depth × width_bits` memory with `ports` access ports,
    /// choosing the macro arrangement with minimum estimated area.
    ///
    /// # Errors
    ///
    /// Returns [`SramError`] if the request is empty or no macro works.
    pub fn compile(&self, depth: u64, width_bits: u64, ports: u32) -> Result<SramPlan, SramError> {
        if depth == 0 || width_bits == 0 {
            return Err(SramError::EmptyRequest);
        }
        let mut best: Option<SramPlan> = None;
        for mac in &self.macros {
            let banks = depth.div_ceil(mac.depth);
            let cascade = width_bits.div_ceil(mac.width_bits);
            let instances = banks * cascade;
            let port_factor = if ports > mac.ports {
                self.extra_port_area_factor * f64::from(ports - mac.ports)
            } else {
                1.0
            };
            // Banking needs an address decoder + output mux: ~3% area per
            // extra bank, and one extra cycle of latency per 4× banking.
            let mux_factor = 1.0 + 0.03 * (banks.saturating_sub(1)) as f64;
            let area = instances as f64 * mac.area_um2 * port_factor * mux_factor;
            let extra_latency = if banks <= 1 {
                0
            } else {
                (64 - (banks - 1).leading_zeros()) as u64 / 2
            };
            let plan = SramPlan {
                macro_cell: mac.clone(),
                banks,
                cascade,
                instances,
                area_um2: area,
                extra_latency,
            };
            if best.as_ref().is_none_or(|b| plan.area_um2 < b.area_um2) {
                best = Some(plan);
            }
        }
        best.ok_or(SramError::NoViableMacro { depth, width_bits })
    }
}

impl Default for SramCompiler {
    fn default() -> Self {
        Self::asap7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_uses_one_instance() {
        let c = SramCompiler::asap7();
        let plan = c.compile(512, 64, 1).unwrap();
        assert_eq!(plan.instances, 1);
        assert_eq!(plan.banks, 1);
        assert_eq!(plan.cascade, 1);
        assert_eq!(plan.extra_latency, 0);
    }

    #[test]
    fn wide_memory_cascades() {
        let c = SramCompiler::asap7();
        let plan = c.compile(512, 256, 1).unwrap();
        assert!(
            plan.cascade >= 2,
            "256b word needs cascading, got {:?}",
            plan
        );
        assert_eq!(plan.banks * plan.cascade, plan.instances);
    }

    #[test]
    fn deep_memory_banks_and_adds_latency() {
        let c = SramCompiler::asap7();
        let plan = c.compile(65536, 64, 1).unwrap();
        assert!(plan.banks >= 16);
        assert!(plan.extra_latency >= 1);
    }

    #[test]
    fn capacity_covers_request() {
        let c = SramCompiler::asap7();
        for (d, w) in [(100, 17), (4096, 72), (320, 8), (10_000, 128)] {
            let plan = c.compile(d, w, 1).unwrap();
            assert!(plan.banks * plan.macro_cell.depth >= d);
            assert!(plan.cascade * plan.macro_cell.width_bits >= w);
        }
    }

    #[test]
    fn dual_port_costs_more_area() {
        let c = SramCompiler::asap7();
        let single = c.compile(1024, 64, 1).unwrap();
        let dual = c.compile(1024, 64, 2).unwrap();
        assert!(dual.area_um2 > single.area_um2);
    }

    #[test]
    fn empty_request_is_rejected() {
        let c = SramCompiler::asap7();
        assert_eq!(c.compile(0, 64, 1), Err(SramError::EmptyRequest));
        assert_eq!(c.compile(64, 0, 1), Err(SramError::EmptyRequest));
    }

    #[test]
    fn area_is_monotone_in_size() {
        let c = SramCompiler::asap7();
        let small = c.compile(512, 32, 1).unwrap().area_um2;
        let large = c.compile(8192, 128, 1).unwrap().area_um2;
        assert!(large > small);
    }
}
