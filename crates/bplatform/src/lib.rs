//! # bplatform — device and platform models
//!
//! Beethoven's "separation of concerns" hinges on a platform description
//! that tells the elaborator everything device-specific (§II-B "Platform
//! Development"): whether the target is an FPGA or ASIC, the external
//! memory system, the host link, how many dies (SLRs) the fabric spans and
//! what each can hold, and how on-chip memories map to physical cells.
//!
//! This crate provides:
//!
//! * [`ResourceVector`] / [`SlrModel`] — per-die resource accounting
//!   (CLB/LUT/FF/BRAM/URAM/DSP).
//! * [`Platform`] — the full platform description, with constructors
//!   mirroring the paper's targets: [`Platform::aws_f1`],
//!   [`Platform::kria`], [`Platform::sim`], [`Platform::asap7_asic`].
//! * [`MemoryCellMapper`] — the resource-aware on-chip-memory mapper with
//!   the 80% spill rule the paper credits for routing the 23-core A³
//!   design (§III-C).
//! * [`SramCompiler`] — the ASIC memory-compiler-like utility that cascades
//!   and banks technology-library SRAM macros (§II-D).
//! * [`Floorplanner`] — SLR-aware core placement and constraint-file
//!   emission (§II-B "Multi-Die Designs", Figure 8).

#![warn(missing_docs)]

mod device;
mod floorplan;
mod memmap;
mod platform;
mod resources;
mod sram;

pub use device::{DeviceModel, SlrId, SlrModel};
pub use floorplan::{Floorplan, Floorplanner, PlacementError};
pub use memmap::{blocks_for, CellKind, MapError, MappedMemory, MemoryCellMapper, MemoryRequest};
pub use platform::{AddressSpace, HostLink, Platform, PlatformKind};
pub use resources::ResourceVector;
pub use sram::{SramCompiler, SramError, SramMacro, SramPlan};
