//! SLR-aware floorplanning and constraint emission.
//!
//! "Beethoven first places accelerator cores across SLRs … and produces
//! constraint files that enforce the placement of all components onto the
//! intended SLRs" (§II-B). This module reproduces the placement pass and
//! the constraint artifact, plus the ASCII floorplan used to regenerate
//! Figure 8.

use crate::device::{DeviceModel, SlrId};
use crate::resources::ResourceVector;

/// Placement failure description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementError {
    /// Cores successfully placed before failure.
    pub placed: usize,
    /// Cores requested.
    pub requested: usize,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "placed only {} of {} cores before exhausting the device",
            self.placed, self.requested
        )
    }
}

impl std::error::Error for PlacementError {}

/// A completed placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Floorplan {
    /// Per-core SLR assignment (index = core id).
    pub assignments: Vec<SlrId>,
    /// Resources used by placed cores per SLR (excluding shell).
    pub used: Vec<ResourceVector>,
}

impl Floorplan {
    /// Cores on each SLR.
    pub fn cores_per_slr(&self, num_slrs: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_slrs];
        for slr in &self.assignments {
            counts[slr.0] += 1;
        }
        counts
    }

    /// Worst-axis utilization per SLR, including the shell.
    pub fn utilization(&self, device: &DeviceModel) -> Vec<f64> {
        self.used
            .iter()
            .zip(&device.slrs)
            .map(|(used, slr)| (*used + slr.shell).utilization_against(&slr.capacity))
            .collect()
    }

    /// Emits Vivado-flavoured placement constraints (pblock per SLR).
    pub fn emit_constraints(&self, device: &DeviceModel, cell_prefix: &str) -> String {
        let mut out = String::new();
        for slr in 0..device.num_slrs() {
            out.push_str(&format!(
                "create_pblock pblock_SLR{slr}\nresize_pblock pblock_SLR{slr} -add SLR{slr}\n"
            ));
        }
        for (core, slr) in self.assignments.iter().enumerate() {
            out.push_str(&format!(
                "add_cells_to_pblock pblock_SLR{} [get_cells {cell_prefix}_{core}]\n",
                slr.0
            ));
        }
        out
    }

    /// Renders a Figure-8-style ASCII floorplan: one box per SLR listing
    /// its cores, highest SLR index leftmost (matching the paper's figure).
    pub fn ascii_art(&self, device: &DeviceModel) -> String {
        let n = device.num_slrs();
        let counts = self.cores_per_slr(n);
        let mut lines: Vec<String> = Vec::new();
        let mut per_slr: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (core, slr) in self.assignments.iter().enumerate() {
            per_slr[slr.0].push(core);
        }
        let col_width = 24usize;
        let rows = per_slr
            .iter()
            .map(|v| v.len().div_ceil(4))
            .max()
            .unwrap_or(0)
            .max(1);
        let border = "+".to_owned() + &("-".repeat(col_width) + "+").repeat(n);
        lines.push(border.clone());
        for row in 0..rows {
            let mut line = String::from("|");
            for slr in (0..n).rev() {
                let chunk: Vec<String> = per_slr[slr]
                    .iter()
                    .skip(row * 4)
                    .take(4)
                    .map(|c| format!("{c:>3}"))
                    .collect();
                line.push_str(&format!("{:^col_width$}|", chunk.join(" ")));
            }
            lines.push(line);
        }
        let mut legend = String::from("|");
        for slr in (0..n).rev() {
            let label = format!("SLR {slr} ({} cores)", counts[slr]);
            legend.push_str(&format!("{label:^col_width$}|"));
        }
        lines.push(border.clone());
        lines.push(legend);
        lines.push(border);
        lines.join("\n") + "\n"
    }
}

/// The placement pass.
#[derive(Debug, Clone, Default)]
pub struct Floorplanner {
    /// Fraction of each SLR's free resources the planner may fill
    /// (leaves routing headroom; the A³ design routed at 96% CLB, so the
    /// default is 0.97).
    pub fill_limit: f64,
}

impl Floorplanner {
    /// Creates a planner with the default fill limit.
    pub fn new() -> Self {
        Self { fill_limit: 0.97 }
    }

    fn budget(&self, device: &DeviceModel, slr: usize) -> ResourceVector {
        let free = device.slrs[slr].free();
        ResourceVector {
            clb: (free.clb as f64 * self.fill_limit) as u64,
            lut: (free.lut as f64 * self.fill_limit) as u64,
            ff: (free.ff as f64 * self.fill_limit) as u64,
            bram: (free.bram as f64 * self.fill_limit) as u64,
            uram: (free.uram as f64 * self.fill_limit) as u64,
            dsp: (free.dsp as f64 * self.fill_limit) as u64,
        }
    }

    /// Places `n_cores` identical cores of footprint `core` onto `device`,
    /// filling the emptiest SLR first (the shell-free SLR2 on the U200
    /// naturally takes the most cores, as in the paper's Figure 8).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when the device cannot hold all cores.
    pub fn place(
        &self,
        device: &DeviceModel,
        core: ResourceVector,
        n_cores: usize,
    ) -> Result<Floorplan, PlacementError> {
        let n = device.num_slrs();
        let budgets: Vec<ResourceVector> = (0..n).map(|s| self.budget(device, s)).collect();
        let mut used = vec![ResourceVector::ZERO; n];
        let mut assignments = Vec::with_capacity(n_cores);
        for _ in 0..n_cores {
            // Candidate SLRs that can still fit the core, least-utilized first.
            let mut best: Option<(usize, f64)> = None;
            for slr in 0..n {
                let after = used[slr] + core;
                if !after.fits_in(&budgets[slr]) {
                    continue;
                }
                let util = after.utilization_against(&budgets[slr]);
                if best.is_none_or(|(_, b)| util < b) {
                    best = Some((slr, util));
                }
            }
            match best {
                Some((slr, _)) => {
                    used[slr] += core;
                    assignments.push(SlrId(slr));
                }
                None => {
                    return Err(PlacementError {
                        placed: assignments.len(),
                        requested: n_cores,
                    })
                }
            }
        }
        Ok(Floorplan { assignments, used })
    }

    /// Places a heterogeneous list of cores (one footprint each), same
    /// greedy balance as [`Floorplanner::place`]. `cores[i]` becomes core
    /// id `i` in the resulting assignment.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when the device cannot hold all cores.
    pub fn place_heterogeneous(
        &self,
        device: &DeviceModel,
        cores: &[ResourceVector],
    ) -> Result<Floorplan, PlacementError> {
        let n = device.num_slrs();
        let budgets: Vec<ResourceVector> = (0..n).map(|s| self.budget(device, s)).collect();
        let mut used = vec![ResourceVector::ZERO; n];
        let mut assignments = Vec::with_capacity(cores.len());
        for core in cores {
            let mut best: Option<(usize, f64)> = None;
            for slr in 0..n {
                let after = used[slr] + *core;
                if !after.fits_in(&budgets[slr]) {
                    continue;
                }
                let util = after.utilization_against(&budgets[slr]);
                if best.is_none_or(|(_, b)| util < b) {
                    best = Some((slr, util));
                }
            }
            match best {
                Some((slr, _)) => {
                    used[slr] += *core;
                    assignments.push(SlrId(slr));
                }
                None => {
                    return Err(PlacementError {
                        placed: assignments.len(),
                        requested: cores.len(),
                    })
                }
            }
        }
        Ok(Floorplan { assignments, used })
    }

    /// The largest number of `core`-sized cores this device can hold.
    pub fn max_cores(&self, device: &DeviceModel, core: ResourceVector) -> usize {
        let mut count = 0usize;
        for slr in 0..device.num_slrs() {
            let budget = self.budget(device, slr);
            let mut fit = usize::MAX;
            for (cap, need) in [
                (budget.clb, core.clb),
                (budget.lut, core.lut),
                (budget.ff, core.ff),
                (budget.bram, core.bram),
                (budget.uram, core.uram),
                (budget.dsp, core.dsp),
            ] {
                if let Some(per) = cap.checked_div(need) {
                    if need > 0 {
                        fit = fit.min(per as usize);
                    }
                }
            }
            count += if fit == usize::MAX { 0 } else { fit };
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;

    fn a3_core() -> ResourceVector {
        // Table II: one A³ core ≈ 4K CLB / 27K LUT / 27K FF / 45 BRAM / 32 URAM.
        ResourceVector::new(4_000, 27_000, 27_000, 45, 24, 0)
    }

    #[test]
    fn u200_fits_about_23_a3_cores() {
        let planner = Floorplanner::new();
        let max = planner.max_cores(&DeviceModel::alveo_u200(), a3_core());
        assert!(
            (20..=30).contains(&max),
            "expected ~23 cores (paper's A3 build), planner says {max}"
        );
    }

    #[test]
    fn shell_free_slr_takes_the_most_cores() {
        let planner = Floorplanner::new();
        let device = DeviceModel::alveo_u200();
        let plan = planner.place(&device, a3_core(), 23).unwrap();
        let counts = plan.cores_per_slr(3);
        assert_eq!(counts.iter().sum::<usize>(), 23);
        assert!(
            counts[2] >= counts[0],
            "SLR2 (no shell) should hold at least as many cores as SLR0: {counts:?}"
        );
    }

    #[test]
    fn placement_fails_gracefully_when_oversubscribed() {
        let planner = Floorplanner::new();
        let device = DeviceModel::alveo_u200();
        let err = planner.place(&device, a3_core(), 500).unwrap_err();
        assert!(err.placed > 0 && err.placed < 500);
        assert!(err.to_string().contains("500"));
    }

    #[test]
    fn constraints_mention_every_core() {
        let planner = Floorplanner::new();
        let device = DeviceModel::alveo_u200();
        let plan = planner.place(&device, a3_core(), 5).unwrap();
        let xdc = plan.emit_constraints(&device, "beethoven_core");
        for core in 0..5 {
            assert!(xdc.contains(&format!("beethoven_core_{core}")));
        }
        assert!(xdc.contains("create_pblock pblock_SLR2"));
    }

    #[test]
    fn ascii_art_shows_all_slrs() {
        let planner = Floorplanner::new();
        let device = DeviceModel::alveo_u200();
        let plan = planner.place(&device, a3_core(), 8).unwrap();
        let art = plan.ascii_art(&device);
        for slr in 0..3 {
            assert!(art.contains(&format!("SLR {slr}")));
        }
    }

    #[test]
    fn utilization_includes_shell() {
        let planner = Floorplanner::new();
        let device = DeviceModel::alveo_u200();
        let plan = planner.place(&device, a3_core(), 3).unwrap();
        let utils = plan.utilization(&device);
        assert_eq!(utils.len(), 3);
        // SLR0 carries the shell, so its utilization should be nonzero even
        // with few cores.
        assert!(utils[0] > 0.1);
    }

    #[test]
    fn single_die_kria_places_linearly() {
        let planner = Floorplanner::new();
        let device = DeviceModel::kria_k26();
        let tiny = ResourceVector::new(500, 4_000, 4_000, 4, 0, 8);
        let plan = planner.place(&device, tiny, 10).unwrap();
        assert!(plan.assignments.iter().all(|s| s.0 == 0));
    }
}
