//! Resource-aware on-chip memory mapping.
//!
//! FPGA toolchains map memories to BRAM or URAM cells; duplicating a core
//! that over-uses one cell type fails placement even when a mixed mapping
//! would succeed. Beethoven's Xilinx backend monitors per-SLR utilization
//! during generation and **spills to the other cell type above 80%
//! utilization** (§II-B "Scratchpads and On-Chip Memory", §III-C). This
//! module reproduces that mapper.

use serde::{Deserialize, Serialize};

use crate::device::{DeviceModel, SlrId};

/// The physical cell type a memory was mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// 36 Kb block RAM.
    Bram,
    /// 288 Kb UltraRAM.
    Uram,
    /// LUT-based distributed RAM (tiny memories).
    Lutram,
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellKind::Bram => write!(f, "BRAM"),
            CellKind::Uram => write!(f, "URAM"),
            CellKind::Lutram => write!(f, "LUTRAM"),
        }
    }
}

/// A logical memory to be mapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryRequest {
    /// Human-readable name (scratchpad/reader buffer name).
    pub name: String,
    /// Word width in bits.
    pub width_bits: u64,
    /// Number of words.
    pub depth: u64,
}

impl MemoryRequest {
    /// Creates a request.
    pub fn new(name: impl Into<String>, width_bits: u64, depth: u64) -> Self {
        Self {
            name: name.into(),
            width_bits,
            depth,
        }
    }

    /// Total bits stored.
    pub fn bits(&self) -> u64 {
        self.width_bits * self.depth
    }
}

/// The outcome of mapping one memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedMemory {
    /// Chosen cell type.
    pub kind: CellKind,
    /// Number of cells consumed.
    pub blocks: u64,
    /// If LUTRAM, the LUTs consumed instead of blocks.
    pub luts: u64,
}

/// BRAM36 programmable aspect ratios: (depth, width).
const BRAM_ASPECTS: &[(u64, u64)] = &[(512, 72), (1024, 36), (2048, 18), (4096, 9), (8192, 4)];
/// URAM has a fixed 4096 × 72 geometry.
const URAM_ASPECT: (u64, u64) = (4096, 72);

/// Cells of `kind` needed for a request.
pub fn blocks_for(kind: CellKind, req: &MemoryRequest) -> u64 {
    match kind {
        CellKind::Bram => BRAM_ASPECTS
            .iter()
            .map(|&(d, w)| req.depth.div_ceil(d) * req.width_bits.div_ceil(w))
            .min()
            .expect("aspect table non-empty"),
        CellKind::Uram => {
            let (d, w) = URAM_ASPECT;
            req.depth.div_ceil(d) * req.width_bits.div_ceil(w)
        }
        CellKind::Lutram => 0,
    }
}

/// Per-SLR cell usage tracker implementing the 80% spill rule.
#[derive(Debug, Clone)]
pub struct MemoryCellMapper {
    /// Spill threshold as a fraction (the paper uses 0.8).
    pub threshold: f64,
    bram_used: Vec<u64>,
    uram_used: Vec<u64>,
    bram_cap: Vec<u64>,
    uram_cap: Vec<u64>,
    /// Memories small enough for LUTRAM (total bits below this go to LUTs).
    pub lutram_bits_threshold: u64,
}

/// Why a memory could not be mapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapError {
    /// The request that failed.
    pub name: String,
    /// The SLR it was targeted at.
    pub slr: SlrId,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no BRAM or URAM capacity left on {} for memory '{}'",
            self.slr, self.name
        )
    }
}

impl std::error::Error for MapError {}

impl MemoryCellMapper {
    /// Creates a mapper over a device's free (post-shell) memory cells.
    pub fn new(device: &DeviceModel) -> Self {
        Self {
            threshold: 0.8,
            bram_used: vec![0; device.num_slrs()],
            uram_used: vec![0; device.num_slrs()],
            bram_cap: device.slrs.iter().map(|s| s.free().bram).collect(),
            uram_cap: device.slrs.iter().map(|s| s.free().uram).collect(),
            lutram_bits_threshold: 1024,
        }
    }

    /// Current utilization of `kind` on `slr` (0.0–1.0+).
    pub fn utilization(&self, slr: SlrId, kind: CellKind) -> f64 {
        let (used, cap) = match kind {
            CellKind::Bram => (self.bram_used[slr.0], self.bram_cap[slr.0]),
            CellKind::Uram => (self.uram_used[slr.0], self.uram_cap[slr.0]),
            CellKind::Lutram => return 0.0,
        };
        if cap == 0 {
            if used == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            used as f64 / cap as f64
        }
    }

    fn fits(&self, slr: SlrId, kind: CellKind, blocks: u64) -> bool {
        match kind {
            CellKind::Bram => self.bram_used[slr.0] + blocks <= self.bram_cap[slr.0],
            CellKind::Uram => self.uram_used[slr.0] + blocks <= self.uram_cap[slr.0],
            CellKind::Lutram => true,
        }
    }

    fn under_threshold_after(&self, slr: SlrId, kind: CellKind, blocks: u64) -> bool {
        let (used, cap) = match kind {
            CellKind::Bram => (self.bram_used[slr.0] + blocks, self.bram_cap[slr.0]),
            CellKind::Uram => (self.uram_used[slr.0] + blocks, self.uram_cap[slr.0]),
            CellKind::Lutram => return true,
        };
        cap > 0 && (used as f64) <= self.threshold * cap as f64
    }

    fn commit(&mut self, slr: SlrId, kind: CellKind, blocks: u64) {
        match kind {
            CellKind::Bram => self.bram_used[slr.0] += blocks,
            CellKind::Uram => self.uram_used[slr.0] += blocks,
            CellKind::Lutram => {}
        }
    }

    /// Maps a memory on `slr`.
    ///
    /// Preference order: LUTRAM for tiny memories; otherwise the cell type
    /// wasting fewer bits — but if committing it would push that type past
    /// the 80% threshold on this SLR while the other type has headroom,
    /// spill to the other type (the paper's mixed BRAM/URAM mappings in
    /// Table II come from exactly this rule).
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] when neither cell type has capacity.
    pub fn map(&mut self, slr: SlrId, req: &MemoryRequest) -> Result<MappedMemory, MapError> {
        if req.bits() <= self.lutram_bits_threshold {
            // Roughly 64 bits of storage per LUT configured as RAM64.
            return Ok(MappedMemory {
                kind: CellKind::Lutram,
                blocks: 0,
                luts: req.bits().div_ceil(64).max(1),
            });
        }
        let bram_blocks = blocks_for(CellKind::Bram, req);
        let uram_blocks = blocks_for(CellKind::Uram, req);
        // Efficiency: the mapping that consumes the smaller fraction of
        // this SLR's budget for that cell type wins (ties go to BRAM).
        let frac = |blocks: u64, cap: u64| {
            if cap == 0 {
                f64::INFINITY
            } else {
                blocks as f64 / cap as f64
            }
        };
        let bram_frac = frac(bram_blocks, self.bram_cap[slr.0]);
        let uram_frac = frac(uram_blocks, self.uram_cap[slr.0]);
        let (pref, alt) = if bram_frac <= uram_frac {
            ((CellKind::Bram, bram_blocks), (CellKind::Uram, uram_blocks))
        } else {
            ((CellKind::Uram, uram_blocks), (CellKind::Bram, bram_blocks))
        };
        for &(kind, blocks) in [&pref, &alt] {
            if self.under_threshold_after(slr, kind, blocks) {
                self.commit(slr, kind, blocks);
                return Ok(MappedMemory {
                    kind,
                    blocks,
                    luts: 0,
                });
            }
        }
        // Both past threshold: fall back to whichever still physically fits.
        for &(kind, blocks) in [&pref, &alt] {
            if self.fits(slr, kind, blocks) {
                self.commit(slr, kind, blocks);
                return Ok(MappedMemory {
                    kind,
                    blocks,
                    luts: 0,
                });
            }
        }
        Err(MapError {
            name: req.name.clone(),
            slr,
        })
    }

    /// Cells of `kind` used so far on `slr`.
    pub fn used(&self, slr: SlrId, kind: CellKind) -> u64 {
        match kind {
            CellKind::Bram => self.bram_used[slr.0],
            CellKind::Uram => self.uram_used[slr.0],
            CellKind::Lutram => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;

    fn mapper() -> MemoryCellMapper {
        MemoryCellMapper::new(&DeviceModel::alveo_u200())
    }

    #[test]
    fn tiny_memory_goes_to_lutram() {
        let mut m = mapper();
        let mapped = m
            .map(SlrId(0), &MemoryRequest::new("small", 8, 64))
            .unwrap();
        assert_eq!(mapped.kind, CellKind::Lutram);
        assert!(mapped.luts >= 1);
    }

    #[test]
    fn medium_memory_prefers_bram() {
        let mut m = mapper();
        // 1024 × 36b fits exactly one BRAM36.
        let mapped = m
            .map(SlrId(0), &MemoryRequest::new("buf", 36, 1024))
            .unwrap();
        assert_eq!(mapped.kind, CellKind::Bram);
        assert_eq!(mapped.blocks, 1);
    }

    #[test]
    fn deep_wide_memory_prefers_uram() {
        let mut m = mapper();
        // 16384 deep × 72b = 1.1 Mb: 4 URAM vs 32 BRAM; URAM wastes less.
        let mapped = m
            .map(SlrId(0), &MemoryRequest::new("deep", 72, 16384))
            .unwrap();
        assert_eq!(mapped.kind, CellKind::Uram);
        assert_eq!(mapped.blocks, 4);
    }

    #[test]
    fn spills_to_uram_past_80_percent() {
        let mut m = mapper();
        let req = MemoryRequest::new("sp", 72, 512); // 1 BRAM-preferred memory
        let cap = m.bram_cap[0];
        let spill_point = (0.8 * cap as f64) as u64;
        let mut first_spill = None;
        for i in 0..cap {
            let mapped = m.map(SlrId(0), &req).unwrap();
            if mapped.kind == CellKind::Uram && first_spill.is_none() {
                first_spill = Some(i);
                break;
            }
        }
        let spilled_at = first_spill.expect("mapper should eventually spill to URAM");
        assert!(
            spilled_at.abs_diff(spill_point) <= 1,
            "spill at {spilled_at}, expected near {spill_point}"
        );
    }

    #[test]
    fn exhaustion_reports_error() {
        let mut device = DeviceModel::alveo_u200();
        device.slrs[0].capacity.bram = 1;
        device.slrs[0].capacity.uram = 1;
        let mut m = MemoryCellMapper::new(&device);
        // Shell already eats more than that: immediately exhausted.
        let big = MemoryRequest::new("big", 72, 1 << 20);
        let err = m.map(SlrId(0), &big).unwrap_err();
        assert!(err.to_string().contains("big"));
    }

    #[test]
    fn per_slr_accounting_is_independent() {
        let mut m = mapper();
        let req = MemoryRequest::new("x", 36, 1024);
        m.map(SlrId(0), &req).unwrap();
        assert_eq!(m.used(SlrId(0), CellKind::Bram), 1);
        assert_eq!(m.used(SlrId(2), CellKind::Bram), 0);
    }

    #[test]
    fn blocks_for_uses_best_bram_aspect() {
        // 4096 × 9b fits one BRAM36 via the 4096×9 aspect.
        assert_eq!(
            blocks_for(CellKind::Bram, &MemoryRequest::new("a", 9, 4096)),
            1
        );
        // 512 × 72b fits one BRAM36 via the 512×72 aspect.
        assert_eq!(
            blocks_for(CellKind::Bram, &MemoryRequest::new("b", 72, 512)),
            1
        );
    }
}
