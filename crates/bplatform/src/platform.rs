//! The full platform description handed to the Beethoven elaborator.

use serde::{Deserialize, Serialize};

use bdram::DramConfig;

use crate::device::DeviceModel;

/// How the accelerator's memory relates to the host's (§II-C.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressSpace {
    /// Embedded platforms (Zynq/Kria): one shared, coherent address space;
    /// `copy_to_fpga`/`copy_from_fpga` are no-ops.
    Shared,
    /// Discrete platforms (AWS F1): device memory is separate; DMA moves
    /// data over the host link.
    Discrete,
}

/// The host↔accelerator link and its costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostLink {
    /// One-way MMIO register access latency, nanoseconds (a PCIe round trip
    /// on discrete platforms, an AXI-Lite hop on embedded ones).
    pub mmio_latency_ns: u64,
    /// DMA bandwidth for bulk copies, bytes per second.
    pub dma_bytes_per_sec: u64,
    /// Fixed DMA setup cost per transfer, nanoseconds.
    pub dma_setup_ns: u64,
}

/// What kind of target this is (affects internal latency choices, §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformKind {
    /// A field-programmable device.
    Fpga,
    /// An application-specific IC flow (ChipKIT-style).
    Asic,
    /// The simulation platform (Verilator/VCS + DRAMSim3 in the paper).
    Simulation,
}

/// A complete platform description.
///
/// Construct with one of the presets and customize fields as needed; this
/// mirrors the paper's `KriaPlatform()` / `AWSF1Platform()` configuration
/// objects (Figure 3a).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Platform name (used in generated artifacts).
    pub name: String,
    /// FPGA / ASIC / simulation.
    pub kind: PlatformKind,
    /// The die model (SLRs, capacities, shell).
    pub device: DeviceModel,
    /// Fabric clock in MHz.
    pub fabric_mhz: u64,
    /// External memory configuration (one controller's worth; the device
    /// exposes `mem_ports` independent controllers).
    pub dram: DramConfig,
    /// Independent memory controller ports (the U200 carries four DDR4
    /// DIMMs, each behind its own AXI interface).
    pub mem_ports: u32,
    /// Memory-bus data width in bytes (AXI beat size).
    pub mem_bus_bytes: u32,
    /// AXI ID bits available on the memory bus.
    pub mem_id_bits: u32,
    /// Address bits.
    pub addr_bits: u32,
    /// Shared or discrete address space.
    pub address_space: AddressSpace,
    /// Host link costs.
    pub host_link: HostLink,
    /// Base address of the accelerator's usable memory region.
    pub mem_base: u64,
    /// Size of the accelerator's usable memory region in bytes.
    pub mem_size: u64,
}

impl Platform {
    /// The AWS F1 / Alveo U200 discrete data-center platform of §III.
    pub fn aws_f1() -> Self {
        Platform {
            name: "aws-f1".to_owned(),
            kind: PlatformKind::Fpga,
            device: DeviceModel::alveo_u200(),
            fabric_mhz: 250,
            dram: DramConfig::ddr4_2400(),
            mem_ports: 4, // four DDR4-2400 DIMMs, 19.2 GB/s each
            mem_bus_bytes: 64,
            mem_id_bits: 4,
            addr_bits: 64,
            address_space: AddressSpace::Discrete,
            host_link: HostLink {
                mmio_latency_ns: 800,
                dma_bytes_per_sec: 12_000_000_000, // PCIe gen3 x16 effective
                dma_setup_ns: 4_000,
            },
            mem_base: 0,
            mem_size: 16 << 30,
        }
    }

    /// The Kria KV260 embedded platform (shared, coherent memory).
    pub fn kria() -> Self {
        Platform {
            name: "kria".to_owned(),
            kind: PlatformKind::Fpga,
            device: DeviceModel::kria_k26(),
            fabric_mhz: 100,
            dram: DramConfig::lpddr4_embedded(),
            mem_ports: 1,
            mem_bus_bytes: 16,
            mem_id_bits: 6,
            addr_bits: 40,
            address_space: AddressSpace::Shared,
            host_link: HostLink {
                mmio_latency_ns: 150,
                dma_bytes_per_sec: u64::MAX, // shared memory: no copies
                dma_setup_ns: 0,
            },
            mem_base: 0x4000_0000,
            mem_size: 2 << 30,
        }
    }

    /// The simulation platform: U200-like fabric with ideal host link
    /// latencies, mirroring the paper's Verilator+DRAMSim3 environment.
    pub fn sim() -> Self {
        let mut p = Self::aws_f1();
        p.name = "sim".to_owned();
        p.kind = PlatformKind::Simulation;
        p.host_link = HostLink {
            mmio_latency_ns: 0,
            dma_bytes_per_sec: u64::MAX,
            dma_setup_ns: 0,
        };
        p
    }

    /// The Alveo U280 HBM platform: the same discrete-card flow as the
    /// U200 but with an HBM2 stack (8 modelled channels per port, 2 ports)
    /// instead of DDR4 DIMMs.
    pub fn u280_hbm() -> Self {
        Platform {
            name: "u280-hbm".to_owned(),
            kind: PlatformKind::Fpga,
            device: DeviceModel::alveo_u280(),
            fabric_mhz: 250,
            dram: DramConfig::hbm2(),
            mem_ports: 2,
            mem_bus_bytes: 64,
            mem_id_bits: 4,
            addr_bits: 64,
            address_space: AddressSpace::Discrete,
            host_link: HostLink {
                mmio_latency_ns: 800,
                dma_bytes_per_sec: 12_000_000_000,
                dma_setup_ns: 4_000,
            },
            mem_base: 0,
            mem_size: 8 << 30,
        }
    }

    /// An ASAP7-class ASIC target (ChipKIT-style): 1 GHz, HBM2 memory,
    /// SRAM provided by the [`crate::SramCompiler`].
    pub fn asap7_asic() -> Self {
        Platform {
            name: "asap7".to_owned(),
            kind: PlatformKind::Asic,
            device: DeviceModel::asic_die(),
            fabric_mhz: 1000,
            dram: DramConfig::hbm2(),
            mem_ports: 2,
            mem_bus_bytes: 32,
            mem_id_bits: 6,
            addr_bits: 48,
            address_space: AddressSpace::Discrete,
            host_link: HostLink {
                mmio_latency_ns: 100,
                dma_bytes_per_sec: 32_000_000_000,
                dma_setup_ns: 500,
            },
            mem_base: 0,
            mem_size: 8 << 30,
        }
    }

    /// The fabric clock as a [`bsim`-style] period in picoseconds.
    ///
    /// [`bsim`-style]: bdram::DramTimings::tck_ps
    pub fn fabric_period_ps(&self) -> u64 {
        1_000_000 / self.fabric_mhz
    }

    /// Whether DMA copies are required to move data to the accelerator.
    pub fn needs_dma(&self) -> bool {
        self.address_space == AddressSpace::Discrete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for p in [
            Platform::aws_f1(),
            Platform::kria(),
            Platform::sim(),
            Platform::asap7_asic(),
            Platform::u280_hbm(),
        ] {
            assert!(p.fabric_mhz > 0);
            assert!(p.mem_bus_bytes.is_power_of_two());
            assert!(p.mem_size > 0);
            assert!(!p.device.slrs.is_empty());
            assert!(p.mem_ports >= 1);
        }
    }

    #[test]
    fn f1_exposes_four_memory_ports() {
        assert_eq!(Platform::aws_f1().mem_ports, 4);
        assert_eq!(Platform::kria().mem_ports, 1);
    }

    #[test]
    fn u280_brings_hbm_bandwidth() {
        let u280 = Platform::u280_hbm();
        let f1 = Platform::aws_f1();
        let hbm_bw = u280.dram.peak_bandwidth_bytes_per_sec() * f64::from(u280.mem_ports);
        let ddr_bw = f1.dram.peak_bandwidth_bytes_per_sec() * f64::from(f1.mem_ports);
        assert!(
            hbm_bw > ddr_bw,
            "HBM platform must out-bandwidth the DDR4 card"
        );
        assert_eq!(u280.device.num_slrs(), 3);
    }

    #[test]
    fn f1_is_discrete_kria_is_shared() {
        assert!(Platform::aws_f1().needs_dma());
        assert!(!Platform::kria().needs_dma());
    }

    #[test]
    fn sim_has_free_host_link() {
        let p = Platform::sim();
        assert_eq!(p.host_link.mmio_latency_ns, 0);
        assert_eq!(p.kind, PlatformKind::Simulation);
    }

    #[test]
    fn asic_runs_at_1ghz() {
        let p = Platform::asap7_asic();
        assert_eq!(p.fabric_mhz, 1000);
        assert_eq!(p.fabric_period_ps(), 1000);
        assert_eq!(p.kind, PlatformKind::Asic);
    }
}
