//! FPGA resource vectors.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Sub};

/// A bundle of FPGA resource counts (also used, loosely, for ASIC area
/// proxies). All fields are plain counts; fractional BRAM halves are scaled
/// by 2 at the call sites that need them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceVector {
    /// Configurable logic blocks.
    pub clb: u64,
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops / CLB registers.
    pub ff: u64,
    /// BRAM36 blocks (count ×2 to express 18Kb halves).
    pub bram: u64,
    /// UltraRAM blocks.
    pub uram: u64,
    /// DSP slices.
    pub dsp: u64,
}

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        clb: 0,
        lut: 0,
        ff: 0,
        bram: 0,
        uram: 0,
        dsp: 0,
    };

    /// A convenience constructor for the common fields.
    pub fn new(clb: u64, lut: u64, ff: u64, bram: u64, uram: u64, dsp: u64) -> Self {
        Self {
            clb,
            lut,
            ff,
            bram,
            uram,
            dsp,
        }
    }

    /// Whether `self` fits within `capacity` on every axis.
    pub fn fits_in(&self, capacity: &ResourceVector) -> bool {
        self.clb <= capacity.clb
            && self.lut <= capacity.lut
            && self.ff <= capacity.ff
            && self.bram <= capacity.bram
            && self.uram <= capacity.uram
            && self.dsp <= capacity.dsp
    }

    /// Element-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            clb: self.clb.saturating_sub(other.clb),
            lut: self.lut.saturating_sub(other.lut),
            ff: self.ff.saturating_sub(other.ff),
            bram: self.bram.saturating_sub(other.bram),
            uram: self.uram.saturating_sub(other.uram),
            dsp: self.dsp.saturating_sub(other.dsp),
        }
    }

    /// The maximum utilization fraction across axes against `capacity`
    /// (axes with zero capacity are ignored unless used, in which case
    /// the result is infinite).
    pub fn utilization_against(&self, capacity: &ResourceVector) -> f64 {
        fn axis(used: u64, cap: u64) -> f64 {
            if cap == 0 {
                if used == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                used as f64 / cap as f64
            }
        }
        [
            axis(self.clb, capacity.clb),
            axis(self.lut, capacity.lut),
            axis(self.ff, capacity.ff),
            axis(self.bram, capacity.bram),
            axis(self.uram, capacity.uram),
            axis(self.dsp, capacity.dsp),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;

    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            clb: self.clb + rhs.clb,
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
            uram: self.uram + rhs.uram,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`ResourceVector::saturating_sub`] when clamping is intended.
    fn sub(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            clb: self.clb - rhs.clb,
            lut: self.lut - rhs.lut,
            ff: self.ff - rhs.ff,
            bram: self.bram - rhs.bram,
            uram: self.uram - rhs.uram,
            dsp: self.dsp - rhs.dsp,
        }
    }
}

impl Mul<u64> for ResourceVector {
    type Output = ResourceVector;

    fn mul(self, n: u64) -> ResourceVector {
        ResourceVector {
            clb: self.clb * n,
            lut: self.lut * n,
            ff: self.ff * n,
            bram: self.bram * n,
            uram: self.uram * n,
            dsp: self.dsp * n,
        }
    }
}

impl std::fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CLB {} | LUT {} | FF {} | BRAM {} | URAM {} | DSP {}",
            self.clb, self.lut, self.ff, self.bram, self.uram, self.dsp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = ResourceVector::new(1, 2, 3, 4, 5, 6);
        let b = ResourceVector::new(10, 20, 30, 40, 50, 60);
        assert_eq!((a + b).lut, 22);
        assert_eq!((b - a).bram, 36);
        assert_eq!((a * 3).dsp, 18);
        let mut c = a;
        c += a;
        assert_eq!(c, a * 2);
    }

    #[test]
    fn fits_and_saturating() {
        let small = ResourceVector::new(1, 1, 1, 1, 1, 1);
        let big = ResourceVector::new(2, 2, 2, 2, 2, 2);
        assert!(small.fits_in(&big));
        assert!(!big.fits_in(&small));
        assert_eq!(small.saturating_sub(&big), ResourceVector::ZERO);
    }

    #[test]
    fn utilization_takes_worst_axis() {
        let cap = ResourceVector::new(100, 100, 100, 100, 100, 100);
        let used = ResourceVector::new(10, 90, 20, 30, 40, 50);
        assert!((used.utilization_against(&cap) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_axis_with_usage_is_infinite() {
        let cap = ResourceVector::new(100, 100, 100, 0, 100, 100);
        let used = ResourceVector::new(0, 0, 0, 1, 0, 0);
        assert!(used.utilization_against(&cap).is_infinite());
    }

    #[test]
    fn display_mentions_all_axes() {
        let s = ResourceVector::new(1, 2, 3, 4, 5, 6).to_string();
        for label in ["CLB", "LUT", "FF", "BRAM", "URAM", "DSP"] {
            assert!(s.contains(label));
        }
    }
}
