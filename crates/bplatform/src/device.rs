//! Multi-die device models (SLR geometry and capacities).

use serde::{Deserialize, Serialize};

use crate::resources::ResourceVector;

/// Index of a Super Logic Region (die) on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlrId(pub usize);

impl std::fmt::Display for SlrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SLR{}", self.0)
    }
}

/// One SLR: its raw capacity and the slice the platform shell permanently
/// occupies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlrModel {
    /// Total fabric resources on this die.
    pub capacity: ResourceVector,
    /// Resources consumed by the platform shell (host link, DDR
    /// controllers, …) on this die.
    pub shell: ResourceVector,
    /// Whether external memory controllers terminate on this die.
    pub has_memory_interface: bool,
    /// Whether the host (PCIe/MMIO) interface terminates on this die.
    pub has_host_interface: bool,
}

impl SlrModel {
    /// Resources available to user logic.
    pub fn free(&self) -> ResourceVector {
        self.capacity.saturating_sub(&self.shell)
    }
}

/// A physical device: one or more SLRs plus inter-die crossing costs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name, e.g. `"xcu200"`.
    pub name: String,
    /// Dies, index 0 first.
    pub slrs: Vec<SlrModel>,
    /// Extra register stages inserted on every SLR crossing (the paper's
    /// networks buffer crossings to meet timing).
    pub crossing_latency_cycles: u64,
    /// Inter-SLR routing tracks available per crossing (a congestion proxy).
    pub crossing_tracks: u64,
}

impl DeviceModel {
    /// The Alveo U200 / VU9P of the paper's AWS F1 evaluation: three SLRs,
    /// shell resident on SLR0 and SLR1 (§III-C), memory + host on SLR0/1.
    ///
    /// Capacities follow the public VU9P tables (per-SLR thirds):
    /// 1,182k LUT / 2,364k FF / 2,160 BRAM36 / 960 URAM / 6,840 DSP /
    /// ~147k CLB total.
    pub fn alveo_u200() -> Self {
        let third = ResourceVector::new(49_260, 394_080, 788_160, 720, 320, 2_280);
        DeviceModel {
            name: "xcu200".to_owned(),
            slrs: vec![
                SlrModel {
                    capacity: third,
                    // The AWS F1 shell: DMA engines, PCIe, DDR-C on SLR0.
                    shell: ResourceVector::new(20_000, 100_000, 150_000, 140, 30, 100),
                    has_memory_interface: true,
                    has_host_interface: true,
                },
                SlrModel {
                    capacity: third,
                    shell: ResourceVector::new(11_000, 50_000, 56_000, 60, 13, 40),
                    has_memory_interface: true,
                    has_host_interface: false,
                },
                SlrModel {
                    capacity: third,
                    shell: ResourceVector::ZERO,
                    has_memory_interface: false,
                    has_host_interface: false,
                },
            ],
            crossing_latency_cycles: 2,
            crossing_tracks: 7_680,
        }
    }

    /// The Alveo U280: three SLRs with an HBM2 stack attached to SLR0.
    /// Slightly smaller fabric than the U200, but vastly more memory
    /// bandwidth — the device class the paper's intro points at for
    /// bandwidth-hungry accelerators.
    pub fn alveo_u280() -> Self {
        let third = ResourceVector::new(44_928, 434_880, 869_760, 672, 320, 3_008);
        DeviceModel {
            name: "xcu280".to_owned(),
            slrs: vec![
                SlrModel {
                    capacity: third,
                    shell: ResourceVector::new(18_000, 90_000, 130_000, 120, 25, 90),
                    has_memory_interface: true, // HBM stack sits below SLR0
                    has_host_interface: true,
                },
                SlrModel {
                    capacity: third,
                    shell: ResourceVector::new(9_000, 40_000, 48_000, 50, 10, 30),
                    has_memory_interface: false,
                    has_host_interface: false,
                },
                SlrModel {
                    capacity: third,
                    shell: ResourceVector::ZERO,
                    has_memory_interface: false,
                    has_host_interface: false,
                },
            ],
            crossing_latency_cycles: 2,
            crossing_tracks: 7_680,
        }
    }

    /// The Kria KV260's XCK26 Zynq UltraScale+: a single die.
    pub fn kria_k26() -> Self {
        DeviceModel {
            name: "xck26".to_owned(),
            slrs: vec![SlrModel {
                capacity: ResourceVector::new(14_616, 117_120, 234_240, 144, 64, 1_248),
                shell: ResourceVector::new(500, 4_000, 6_000, 4, 0, 0),
                has_memory_interface: true,
                has_host_interface: true,
            }],
            crossing_latency_cycles: 0,
            crossing_tracks: 0,
        }
    }

    /// A notional ASIC "die" with effectively unconstrained logic; SRAM is
    /// accounted by the [`crate::SramCompiler`] instead.
    pub fn asic_die() -> Self {
        DeviceModel {
            name: "asic".to_owned(),
            slrs: vec![SlrModel {
                capacity: ResourceVector::new(
                    u64::MAX / 4,
                    u64::MAX / 4,
                    u64::MAX / 4,
                    u64::MAX / 4,
                    0,
                    u64::MAX / 4,
                ),
                shell: ResourceVector::ZERO,
                has_memory_interface: true,
                has_host_interface: true,
            }],
            crossing_latency_cycles: 0,
            crossing_tracks: 0,
        }
    }

    /// Number of SLRs.
    pub fn num_slrs(&self) -> usize {
        self.slrs.len()
    }

    /// Total user-available resources across SLRs.
    pub fn total_free(&self) -> ResourceVector {
        self.slrs
            .iter()
            .fold(ResourceVector::ZERO, |acc, slr| acc + slr.free())
    }

    /// Total raw capacity across SLRs.
    pub fn total_capacity(&self) -> ResourceVector {
        self.slrs
            .iter()
            .fold(ResourceVector::ZERO, |acc, slr| acc + slr.capacity)
    }

    /// The SLR hosting the host interface.
    ///
    /// # Panics
    ///
    /// Panics if the device declares no host interface.
    pub fn host_slr(&self) -> SlrId {
        SlrId(
            self.slrs
                .iter()
                .position(|s| s.has_host_interface)
                .expect("device has no host interface SLR"),
        )
    }

    /// Crossing distance between two SLRs (dies are arranged linearly).
    pub fn crossing_hops(&self, a: SlrId, b: SlrId) -> u64 {
        a.0.abs_diff(b.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u200_has_three_slrs_with_shell_on_first_two() {
        let dev = DeviceModel::alveo_u200();
        assert_eq!(dev.num_slrs(), 3);
        assert!(dev.slrs[0].shell.lut > 0);
        assert!(dev.slrs[1].shell.lut > 0);
        assert_eq!(dev.slrs[2].shell, ResourceVector::ZERO);
        assert_eq!(dev.host_slr(), SlrId(0));
    }

    #[test]
    fn u200_totals_match_public_tables() {
        let dev = DeviceModel::alveo_u200();
        let total = dev.total_capacity();
        assert_eq!(total.lut, 1_182_240);
        assert_eq!(total.bram, 2_160);
        assert_eq!(total.uram, 960);
    }

    #[test]
    fn free_subtracts_shell() {
        let dev = DeviceModel::alveo_u200();
        let slr0 = &dev.slrs[0];
        assert_eq!(slr0.free().lut, slr0.capacity.lut - slr0.shell.lut);
        // SLR2 is untouched.
        assert_eq!(dev.slrs[2].free(), dev.slrs[2].capacity);
    }

    #[test]
    fn crossing_hops_is_linear_distance() {
        let dev = DeviceModel::alveo_u200();
        assert_eq!(dev.crossing_hops(SlrId(0), SlrId(2)), 2);
        assert_eq!(dev.crossing_hops(SlrId(2), SlrId(0)), 2);
        assert_eq!(dev.crossing_hops(SlrId(1), SlrId(1)), 0);
    }

    #[test]
    fn kria_is_single_die() {
        let dev = DeviceModel::kria_k26();
        assert_eq!(dev.num_slrs(), 1);
        assert_eq!(dev.crossing_latency_cycles, 0);
    }

    #[test]
    fn slr_display() {
        assert_eq!(SlrId(2).to_string(), "SLR2");
    }
}
