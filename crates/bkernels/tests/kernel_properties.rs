//! Property-based tests on the MachSuite kernels: hardware-vs-reference
//! equality at randomized sizes, and algebraic invariants of the software
//! references themselves.

use bcore::elaborate;
use bkernels::machsuite::{gemm, mdknn, nw, stencil2d, stencil3d};
use bplatform::Platform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// GeMM through the full SoC equals the reference for arbitrary small
    /// sizes, parallelism factors, and inputs.
    #[test]
    fn gemm_device_matches_reference(
        n_quarter in 1usize..5, // n = 4, 8, 12, 16
        p_log in 0u32..4,       // p = 1, 2, 4, 8
        seed in any::<u64>(),
    ) {
        let n = n_quarter * 4;
        let p = 1 << p_log;
        let mut soc = elaborate(gemm::config(1, n, p), &Platform::sim()).unwrap();
        let (a, b) = gemm::workload(n, seed);
        {
            let mem = soc.memory();
            let mut mem = mem.borrow_mut();
            mem.write_u32_slice(0x1_0000, &a.iter().map(|&x| x as u32).collect::<Vec<_>>());
            mem.write_u32_slice(0x8_0000, &b.iter().map(|&x| x as u32).collect::<Vec<_>>());
        }
        let token = soc.send_command(0, 0, &gemm::args(0x1_0000, 0x8_0000, 0x10_0000, n)).unwrap();
        soc.run_until_response(token, 20_000_000).expect("gemm completes");
        let got: Vec<i32> = soc
            .memory()
            .borrow()
            .read_u32_slice(0x10_0000, n * n)
            .into_iter()
            .map(|v| v as i32)
            .collect();
        prop_assert_eq!(got, gemm::reference(&a, &b, n));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// NW reference invariants: stripping gaps from the aligned outputs
    /// recovers the inputs (reversed), gap columns never align two gaps,
    /// and the alignment length is within [n, 2n].
    #[test]
    fn nw_reference_alignment_invariants(n in 2usize..48, seed in any::<u64>()) {
        let (a, b) = nw::workload(n, seed);
        let (out_a, out_b) = nw::reference(&a, &b, n);
        let strip = |s: &[u8]| -> Vec<u8> {
            let mut v: Vec<u8> = s.iter().copied().filter(|&c| c != b'-' && c != nw::PAD).collect();
            v.reverse();
            v
        };
        prop_assert_eq!(strip(&out_a), a);
        prop_assert_eq!(strip(&out_b), b);
        let mut len = 0;
        for (&ca, &cb) in out_a.iter().zip(out_b.iter()) {
            if ca == nw::PAD {
                prop_assert_eq!(cb, nw::PAD, "padding must be aligned");
                continue;
            }
            len += 1;
            prop_assert!(!(ca == b'-' && cb == b'-'), "two gaps can never align");
        }
        prop_assert!((n..=2 * n).contains(&len), "alignment length {len} outside [n, 2n]");
    }

    /// The stencil is linear in the grid for a fixed filter (over wrapping
    /// integer arithmetic): S(a + b) = S(a) + S(b).
    #[test]
    fn stencil2d_reference_is_linear(n in 4usize..20, seed in any::<u64>()) {
        let (grid_a, filter) = stencil2d::workload(n, seed);
        let (grid_b, _) = stencil2d::workload(n, seed.wrapping_add(1));
        let summed: Vec<i32> = grid_a
            .iter()
            .zip(grid_b.iter())
            .map(|(&x, &y)| x.wrapping_add(y))
            .collect();
        let lhs = stencil2d::reference(&summed, &filter, n);
        let sa = stencil2d::reference(&grid_a, &filter, n);
        let sb = stencil2d::reference(&grid_b, &filter, n);
        let rhs: Vec<i32> = sa.iter().zip(sb.iter()).map(|(&x, &y)| x.wrapping_add(y)).collect();
        prop_assert_eq!(lhs, rhs);
    }

    /// Zero filter annihilates the stencil.
    #[test]
    fn stencil2d_zero_filter_gives_zero(n in 4usize..16, seed in any::<u64>()) {
        let (grid, _) = stencil2d::workload(n, seed);
        let sol = stencil2d::reference(&grid, &[0; 9], n);
        prop_assert!(sol.iter().all(|&v| v == 0));
    }

    /// Stencil3D with c0 = 1, c1 = 0 is the identity on the interior and
    /// the boundary passes through regardless of coefficients.
    #[test]
    fn stencil3d_identity_coefficients(n in 3usize..10, seed in any::<u64>()) {
        let grid = stencil3d::workload(n, seed);
        let sol = stencil3d::reference(&grid, n, 1, 0);
        prop_assert_eq!(sol, grid);
    }

    /// MD-KNN forces are finite for any workload and identical for
    /// identical (position, neighbour-list) inputs regardless of how the
    /// lists were generated.
    #[test]
    fn mdknn_reference_is_total_and_deterministic(
        n_quarter in 2usize..12,
        k_log in 1u32..4,
        seed in any::<u64>(),
    ) {
        let n = n_quarter * 4;
        let k = 1usize << k_log;
        prop_assume!(k < n);
        let (pos, nl) = mdknn::workload(n, k, seed);
        let f1 = mdknn::reference(&pos, &nl, n, k);
        let f2 = mdknn::reference(&pos, &nl, n, k);
        prop_assert_eq!(f1.len(), 3 * n);
        for (a, b) in f1.iter().zip(f2.iter()) {
            prop_assert!(a.is_finite());
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
