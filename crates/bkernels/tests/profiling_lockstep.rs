//! Lockstep guard for the performance-counter layer: profiling must be
//! observation-only. The same full-SoC memcpy workload is driven with
//! counters disabled and enabled (in both scheduler modes), and every
//! simulated observable must be byte-identical — response cycles, final
//! `now`, copied bytes, DRAM statistics, and controller counters. A
//! profiling build that perturbs timing would defeat the whole point of
//! the counters.
//!
//! The gated counters themselves are *skip-invariant*: they only
//! increment in busy-guarded paths (dense-ticked in both scheduler
//! modes) or on command-driven events, so the flattened counter values —
//! apart from the `scheduler/*` pair, which measures the scheduler
//! rather than the hardware — must also match between the naive and
//! idle-skipping runs.

use bcore::elaborate::{elaborate_with, ElaborationOptions};
use bkernels::memcpy;
use bplatform::Platform;

const SRC: u64 = 0x10_0000;
const DST: u64 = 0x80_0000;
const BYTES: u64 = 16 * 1024;
const IDLE_GAP_CYCLES: u64 = 200_000;

struct Run {
    elapsed_first: u64,
    elapsed_second: u64,
    final_now: u64,
    copied: Vec<u8>,
    dram: bdram::ChannelStats,
    controller: bsim::StatsSnapshot,
    /// Flattened counters minus the mode-dependent `scheduler/*` pair.
    hardware_counters: Vec<(String, u64)>,
}

fn drive(event_driven: bool, profile: bool) -> Run {
    let opts = ElaborationOptions {
        profile,
        ..ElaborationOptions::default()
    };
    let mut soc =
        elaborate_with(memcpy::config(), &Platform::aws_f1(), opts).expect("memcpy elaborates");
    soc.set_event_driven(event_driven);
    let payload: Vec<u8> = (0..BYTES).map(|i| (i % 251) as u8).collect();
    soc.memory().borrow_mut().write(SRC, &payload);
    let args = |src, dst| {
        [
            ("src".to_owned(), src),
            ("dst".to_owned(), dst),
            ("len".to_owned(), BYTES),
        ]
        .into_iter()
        .collect()
    };

    let token = soc.send_command(0, 0, &args(SRC, DST)).expect("send");
    let elapsed_first = soc
        .run_until_response(token, 100_000_000)
        .expect("first copy");

    // Quiescent stretch so the idle-skipping path is exercised too.
    soc.run_for(IDLE_GAP_CYCLES);

    let token = soc
        .send_command(0, 0, &args(DST, SRC + BYTES))
        .expect("send");
    let elapsed_second = soc
        .run_until_response(token, 100_000_000)
        .expect("second copy");

    Run {
        elapsed_first,
        elapsed_second,
        final_now: soc.now(),
        copied: soc.memory().borrow().read_vec(SRC + BYTES, BYTES as usize),
        dram: soc.dram_stats(),
        controller: soc.controller_stats().snapshot(),
        hardware_counters: soc
            .perf_counters()
            .into_iter()
            .filter(|(name, _)| !name.starts_with("scheduler/"))
            .collect(),
    }
}

fn assert_observables_match(a: &Run, b: &Run, what: &str) {
    assert_eq!(a.elapsed_first, b.elapsed_first, "{what}: first response");
    assert_eq!(
        a.elapsed_second, b.elapsed_second,
        "{what}: second response"
    );
    assert_eq!(a.final_now, b.final_now, "{what}: final cycle");
    assert_eq!(a.copied, b.copied, "{what}: copied bytes");
    assert_eq!(a.dram, b.dram, "{what}: DRAM stats");
    assert_eq!(a.controller, b.controller, "{what}: controller stats");
}

#[test]
fn profiling_does_not_perturb_cycle_counts() {
    for event_driven in [false, true] {
        let off = drive(event_driven, false);
        let on = drive(event_driven, true);
        assert_observables_match(
            &off,
            &on,
            &format!("profiling on/off, event_driven={event_driven}"),
        );
    }
}

#[test]
fn gated_counters_are_skip_invariant() {
    let naive = drive(false, true);
    let event = drive(true, true);
    assert_observables_match(&naive, &event, "scheduler modes, profiling on");
    assert_eq!(
        naive.hardware_counters, event.hardware_counters,
        "non-scheduler counters must not depend on the scheduler mode"
    );
    // The run actually produced counter traffic, including gated counters
    // that only exist with profiling enabled.
    let beats = naive
        .hardware_counters
        .iter()
        .find(|(n, _)| n == "mem0/r_beats")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(beats > 0, "memcpy produced no read beats?");
}
