//! The sweep executor's core assumption, checked at the kernel layer: a
//! simulation is a closed system, so constructing and running the same
//! SoC on a spawned thread produces exactly the cycles it produces on the
//! main thread. (`bsim::Simulation` is `Rc`-based and `!Send` — what
//! crosses the thread boundary here is only the parameters in and the
//! plain result struct out, which is precisely what `bbench::par` jobs
//! do.)

use bkernels::memcpy::{run_memcpy, MemcpyVariant};

#[test]
fn memcpy_cycles_do_not_depend_on_the_host_thread() {
    for variant in MemcpyVariant::ALL {
        let bytes = 16 << 10;
        let on_main = run_memcpy(variant, bytes);
        let on_worker = std::thread::spawn(move || run_memcpy(variant, bytes))
            .join()
            .expect("worker run completes");
        assert_eq!(
            on_main.cycles,
            on_worker.cycles,
            "{} must be cycle-exact across host threads",
            variant.label()
        );
        assert_eq!(on_main.bytes, on_worker.bytes);
        assert!((on_main.gbps - on_worker.gbps).abs() < 1e-12);
    }
}

#[test]
fn concurrent_simulations_do_not_perturb_each_other() {
    let bytes = 8 << 10;
    let reference = run_memcpy(MemcpyVariant::Beethoven, bytes);
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || run_memcpy(MemcpyVariant::Beethoven, bytes).cycles))
        .collect();
    for handle in handles {
        let cycles = handle.join().expect("concurrent run completes");
        assert_eq!(cycles, reference.cycles, "no cross-thread interference");
    }
}
