//! Cross-validation of the Figure 6 comparator models against the
//! simulation substrate.
//!
//! The Vitis HLS / Spatial numbers in Figure 6 come from analytic cycle
//! models (we cannot run the closed toolchains). These tests check the
//! models aren't unmoored from the substrate: running the *same kernel*
//! through the simulator with HLS-like transaction shaping and the same
//! unroll factor must land within a small factor of the analytic count.

use bcore::elaborate::{elaborate_with, ElaborationOptions};
use bkernels::machsuite::baselines::{model, Method, PaperParams};
use bkernels::machsuite::{gemm, stencil3d, Bench};
use bplatform::Platform;

fn hls_like_platform() -> Platform {
    let mut p = Platform::aws_f1();
    p.fabric_mhz = 250; // HLS synthesizes at 250 in the model
    p.host_link.mmio_latency_ns = 0;
    p
}

/// HLS-like memory shaping: 16-beat bursts, one AXI ID.
fn hls_like_opts() -> ElaborationOptions {
    ElaborationOptions {
        burst_beats: 16,
        ids_per_port: 1,
        reader_inflight: 8,
        writer_inflight: 8,
        ..ElaborationOptions::default()
    }
}

#[test]
fn gemm_substrate_run_matches_analytic_model_within_2x() {
    let n = 32;
    let unroll = 16; // the model's assumed HLS unroll for GeMM
    let mut soc = elaborate_with(
        gemm::config(1, n, unroll),
        &hls_like_platform(),
        hls_like_opts(),
    )
    .unwrap();
    let (a, b) = gemm::workload(n, 1);
    {
        let mem = soc.memory();
        let mut mem = mem.borrow_mut();
        mem.write_u32_slice(0x1_0000, &a.iter().map(|&x| x as u32).collect::<Vec<_>>());
        mem.write_u32_slice(0x9_0000, &b.iter().map(|&x| x as u32).collect::<Vec<_>>());
    }
    let start = soc.now();
    let token = soc
        .send_command(0, 0, &gemm::args(0x1_0000, 0x9_0000, 0x20_0000, n))
        .unwrap();
    soc.run_until_response(token, 50_000_000).unwrap();
    let simulated = (soc.now() - start) as f64;

    let params = PaperParams {
        gemm_n: n,
        ..PaperParams::default()
    };
    let analytic = model(Method::VitisHls, Bench::Gemm, &params).total_cycles() as f64;
    let ratio = simulated / analytic;
    assert!(
        (0.5..2.0).contains(&ratio),
        "substrate {simulated} cycles vs analytic {analytic}: ratio {ratio:.2} outside 2x band"
    );
}

#[test]
fn stencil3d_substrate_run_matches_analytic_model_within_2x() {
    let n = 8;
    // The analytic model's "unroll 8" spreads across the 8 taps of one
    // cell (one output cell per cycle); the substrate core's parallelism
    // parameter counts *cells* per cycle, so the equivalent is p = 1.
    let cells_per_cycle = 1;
    let mut soc = elaborate_with(
        stencil3d::config(1, n, cells_per_cycle),
        &hls_like_platform(),
        hls_like_opts(),
    )
    .unwrap();
    let grid = stencil3d::workload(n, 2);
    soc.memory().borrow_mut().write_u32_slice(
        0x1_0000,
        &grid.iter().map(|&x| x as u32).collect::<Vec<_>>(),
    );
    let start = soc.now();
    let token = soc
        .send_command(0, 0, &stencil3d::args(0x1_0000, 0x8_0000, n, 2, -1))
        .unwrap();
    soc.run_until_response(token, 50_000_000).unwrap();
    let simulated = (soc.now() - start) as f64;

    let params = PaperParams {
        s3d_n: n,
        ..PaperParams::default()
    };
    let analytic = model(Method::VitisHls, Bench::Stencil3d, &params).total_cycles() as f64;
    let ratio = simulated / analytic;
    assert!(
        (0.4..2.5).contains(&ratio),
        "substrate {simulated} cycles vs analytic {analytic}: ratio {ratio:.2} outside band"
    );
}
