//! End-to-end lockstep guard for the schedulers: the same full-SoC
//! workload (elaborated memcpy core, AXI interconnect, memory controller,
//! DRAM with refresh) is driven once per [`bsim::SchedulerMode`] — naive
//! cycle-by-cycle stepping, idle-skipping fast-forward, and the active-set
//! heap scheduler — through a command / long idle gap / command sequence,
//! and every observable must be byte-identical: response cycles, final
//! `now`, copied bytes, DRAM statistics (refreshes across the skipped gap
//! included), controller counters, and the full performance-counter
//! registry (minus the `scheduler/` namespace, which *describes* the
//! scheduling work and so is the one legitimately mode-dependent corner).

use bcore::elaborate;
use bkernels::memcpy;
use bplatform::Platform;
use bsim::SchedulerMode;

const SRC: u64 = 0x10_0000;
const DST: u64 = 0x80_0000;
const BYTES: u64 = 16 * 1024;
/// Long enough to span many tREFI windows at the fabric clock.
const IDLE_GAP_CYCLES: u64 = 400_000;

struct Run {
    elapsed_first: u64,
    elapsed_second: u64,
    final_now: u64,
    copied: Vec<u8>,
    dram: bdram::ChannelStats,
    controller: bsim::StatsSnapshot,
    /// Every perf counter outside the `scheduler/` namespace.
    counters: Vec<(String, u64)>,
}

fn drive(mode: SchedulerMode) -> Run {
    let mut soc = elaborate(memcpy::config(), &Platform::aws_f1()).expect("memcpy elaborates");
    soc.set_scheduler_mode(mode);
    soc.set_profiling(true);
    let payload: Vec<u8> = (0..BYTES).map(|i| (i % 251) as u8).collect();
    soc.memory().borrow_mut().write(SRC, &payload);
    let args = |src, dst| {
        [
            ("src".to_owned(), src),
            ("dst".to_owned(), dst),
            ("len".to_owned(), BYTES),
        ]
        .into_iter()
        .collect()
    };

    let token = soc.send_command(0, 0, &args(SRC, DST)).expect("send");
    let elapsed_first = soc
        .run_until_response(token, 100_000_000)
        .expect("first copy");

    // A quiescent stretch: cores idle, channels drained, only DRAM refresh
    // has anything to do. This is the region fast-forward collapses.
    soc.run_for(IDLE_GAP_CYCLES);

    // Copy back the other way; timing after the gap must line up exactly.
    let token = soc
        .send_command(0, 0, &args(DST, SRC + BYTES))
        .expect("send");
    let elapsed_second = soc
        .run_until_response(token, 100_000_000)
        .expect("second copy");

    Run {
        elapsed_first,
        elapsed_second,
        final_now: soc.now(),
        copied: soc.memory().borrow().read_vec(SRC + BYTES, BYTES as usize),
        dram: soc.dram_stats(),
        controller: soc.controller_stats().snapshot(),
        counters: soc
            .perf_counters()
            .into_iter()
            .filter(|(name, _)| !name.starts_with("scheduler/"))
            .collect(),
    }
}

#[test]
fn all_scheduler_modes_are_byte_identical() {
    let naive = drive(SchedulerMode::Naive);
    for mode in [SchedulerMode::IdleSkip, SchedulerMode::ActiveSet] {
        let run = drive(mode);
        assert_eq!(
            naive.elapsed_first, run.elapsed_first,
            "{mode:?}: first response cycle diverged"
        );
        assert_eq!(
            naive.elapsed_second, run.elapsed_second,
            "{mode:?}: second response cycle diverged"
        );
        assert_eq!(
            naive.final_now, run.final_now,
            "{mode:?}: final cycle diverged"
        );
        assert_eq!(naive.copied, run.copied, "{mode:?}: copied bytes diverged");
        assert_eq!(naive.dram, run.dram, "{mode:?}: DRAM stats diverged");
        assert_eq!(
            naive.controller, run.controller,
            "{mode:?}: controller stats diverged"
        );
        assert_eq!(
            naive.counters, run.counters,
            "{mode:?}: perf counters diverged"
        );
    }

    // The gap really was refresh-active — otherwise this test would not
    // exercise the DRAM wake-up math it exists to guard.
    assert!(naive.dram.refreshes > 0, "idle gap saw no refreshes");
    // And the counter comparison really covered the SoC, not an empty set.
    assert!(
        !naive.counters.is_empty(),
        "profiling left no non-scheduler counters to compare"
    );
    let expect: Vec<u8> = (0..BYTES).map(|i| (i % 251) as u8).collect();
    assert_eq!(naive.copied, expect, "round-tripped payload corrupted");
}
