//! The §III-A memory-copy microbenchmark and its methodology variants.
//!
//! The paper compares four implementations of a DRAM-to-DRAM copy on the
//! AWS F1 platform:
//!
//! * **Pure-HDL** — hand-written Chisel: overlaps the read and write
//!   streams "but only uses a single AXI ID and emits one transaction per
//!   ID concurrently" (≈470 LoC in the paper).
//! * **Beethoven** — Readers/Writers with transaction-level parallelism:
//!   long copies become several concurrent transactions on different IDs.
//! * **Beethoven No-TLP** — the same Readers/Writers restricted to one ID.
//! * **HLS** — Vitis HLS output: although annotated for 64-beat bursts,
//!   "the compiled output only used 16-beat bursts", all on one AXI ID,
//!   at a 500 MHz kernel clock bottlenecked by the 250 MHz DDR controller.
//!
//! All four run on the same simulated controller + DRAM here; only the
//! transaction-shaping parameters differ — which is exactly the paper's
//! point.

use bcore::elaborate::{elaborate_with, ElaborationOptions};
use bcore::{
    AccelCommandSpec, AcceleratorConfig, AcceleratorCore, CoreContext, FieldType,
    ReadChannelConfig, SystemConfig, WriteChannelConfig,
};
use bplatform::Platform;
use bsim::{TraceEvent, Tracer};

/// System name.
pub const SYSTEM: &str = "MemcpySystem";

/// A streaming copy core: `memcpy(dst, src, len)`.
#[derive(Debug, Default)]
pub struct MemcpyCore {
    remaining: u64,
    active: bool,
}

impl MemcpyCore {
    /// A fresh, idle core.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AcceleratorCore for MemcpyCore {
    // Between commands a tick only polls the command queue, which the
    // harness watches through its visibility clock.
    fn idle(&self) -> bool {
        !self.active
    }

    fn tick(&mut self, sim: &bsim::SimCtx, ctx: &mut CoreContext) {
        if !self.active {
            if let Some(cmd) = ctx.take_command(sim) {
                let src = cmd.arg("src");
                let dst = cmd.arg("dst");
                let len = cmd.arg("len");
                self.remaining = len;
                self.active = true;
                ctx.reader("src").request(src, len).expect("reader idle");
                ctx.writer("dst").request(dst, len).expect("writer idle");
            }
            return;
        }
        // Move up to one bus beat per cycle from the read stream to the
        // write stream (the datapath is just a register).
        while self.remaining > 0 && ctx.writer("dst").can_push() {
            let chunk_len = 64.min(self.remaining) as usize;
            let Some(chunk) = ctx.reader("src").pop_bytes(chunk_len) else {
                break;
            };
            ctx.writer("dst").push_chunk(&chunk);
            self.remaining -= chunk_len as u64;
        }
        if self.remaining == 0 && ctx.writer("dst").done() && ctx.respond(sim, 0) {
            self.active = false;
        }
    }
}

/// Command spec: `memcpy(src, dst, len)`.
pub fn command_spec() -> AccelCommandSpec {
    AccelCommandSpec::new(
        "memcpy",
        vec![
            ("src".to_owned(), FieldType::Address),
            ("dst".to_owned(), FieldType::Address),
            ("len".to_owned(), FieldType::U(32)),
        ],
    )
}

/// Single-core memcpy configuration.
pub fn config() -> AcceleratorConfig {
    AcceleratorConfig::new().with_system(
        SystemConfig::new(SYSTEM, 1, command_spec(), || Box::new(MemcpyCore::new()))
            .with_read(ReadChannelConfig::new("src", 64))
            .with_write(WriteChannelConfig::new("dst", 64)),
    )
}

/// The four methodology variants of Figures 4/5 (plus the 16-beat
/// Beethoven control experiment the paper ran to isolate burst length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemcpyVariant {
    /// Hand-written RTL: 64-beat bursts, one ID, one transaction at a time.
    PureHdl,
    /// Beethoven with TLP: 64-beat bursts across 4 IDs, 4 in flight.
    Beethoven,
    /// Beethoven without TLP: 64-beat bursts, single ID.
    BeethovenNoTlp,
    /// Vitis-HLS model: 16-beat bursts, all on one ID, 500 MHz kernel.
    Hls,
    /// Control: Beethoven constrained to 16-beat bursts (still multi-ID).
    Beethoven16Beat,
}

impl MemcpyVariant {
    /// All variants, in the paper's presentation order.
    pub const ALL: [MemcpyVariant; 5] = [
        MemcpyVariant::PureHdl,
        MemcpyVariant::Beethoven,
        MemcpyVariant::BeethovenNoTlp,
        MemcpyVariant::Hls,
        MemcpyVariant::Beethoven16Beat,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MemcpyVariant::PureHdl => "Pure-HDL",
            MemcpyVariant::Beethoven => "Beethoven",
            MemcpyVariant::BeethovenNoTlp => "Beethoven (No-TLP)",
            MemcpyVariant::Hls => "HLS",
            MemcpyVariant::Beethoven16Beat => "Beethoven (16-beat)",
        }
    }

    /// Elaboration options producing this variant's transaction shape.
    pub fn options(&self) -> ElaborationOptions {
        let base = ElaborationOptions {
            prefetch_bytes: 32 * 1024,
            staging_bytes: 32 * 1024,
            ..ElaborationOptions::default()
        };
        match self {
            // Double-buffered AR issue (the next request launches while
            // the current burst streams) — standard hand-RTL practice,
            // still one ID and one burst on the data bus at a time.
            MemcpyVariant::PureHdl => ElaborationOptions {
                burst_beats: 64,
                ids_per_port: 1,
                reader_inflight: 2,
                writer_inflight: 2,
                ..base
            },
            MemcpyVariant::Beethoven => ElaborationOptions {
                burst_beats: 64,
                ids_per_port: 4,
                reader_inflight: 4,
                writer_inflight: 4,
                ..base
            },
            MemcpyVariant::BeethovenNoTlp => ElaborationOptions {
                burst_beats: 64,
                ids_per_port: 1,
                reader_inflight: 4,
                writer_inflight: 4,
                ..base
            },
            MemcpyVariant::Hls => ElaborationOptions {
                burst_beats: 16,
                ids_per_port: 1,
                reader_inflight: 8,
                writer_inflight: 8,
                ..base
            },
            MemcpyVariant::Beethoven16Beat => ElaborationOptions {
                burst_beats: 16,
                ids_per_port: 4,
                reader_inflight: 8,
                writer_inflight: 8,
                ..base
            },
        }
    }

    /// Kernel clock in MHz (HLS synthesized at 500; everything else at the
    /// platform's 250).
    pub fn fabric_mhz(&self) -> u64 {
        match self {
            MemcpyVariant::Hls => 500,
            _ => 250,
        }
    }
}

/// The result of one memcpy run.
#[derive(Debug, Clone)]
pub struct MemcpyResult {
    /// Variant that ran.
    pub variant: MemcpyVariant,
    /// Bytes copied.
    pub bytes: u64,
    /// Fabric cycles from command send to response.
    pub cycles: u64,
    /// Wall-clock seconds at the variant's fabric clock.
    pub seconds: f64,
    /// Copy bandwidth (bytes copied per second; each byte is read once
    /// and written once).
    pub gbps: f64,
    /// Recorded AXI events (enabled only by [`run_memcpy_traced`]).
    pub trace: Vec<TraceEvent>,
}

fn run_inner(
    variant: MemcpyVariant,
    bytes: u64,
    trace: bool,
    profile: bool,
) -> (MemcpyResult, bcore::SocSim) {
    let mut platform = Platform::aws_f1();
    platform.fabric_mhz = variant.fabric_mhz();
    // Host-side costs are irrelevant to this microbenchmark.
    platform.host_link.mmio_latency_ns = 0;
    let mut opts = variant.options();
    opts.trace = trace;
    opts.profile = profile;
    let mut soc = elaborate_with(config(), &platform, opts).expect("memcpy elaborates");
    let src = 0x100_0000u64;
    let dst = 0x800_0000u64;
    let payload: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
    soc.memory().borrow_mut().write(src, &payload);
    let args = [
        ("src".to_owned(), src),
        ("dst".to_owned(), dst),
        ("len".to_owned(), bytes),
    ]
    .into_iter()
    .collect();
    let start = soc.now();
    if profile {
        soc.sample_perf();
    }
    let token = soc.send_command(0, 0, &args).expect("send");
    soc.run_until_response(token, 100_000_000)
        .expect("memcpy completes");
    if profile {
        soc.sample_perf();
    }
    let cycles = soc.now() - start;
    // Functional check on every run: a benchmark that copies wrong bytes
    // measures nothing.
    let out = soc.memory().borrow().read_vec(dst, bytes as usize);
    assert_eq!(out, payload, "memcpy corrupted data");
    let seconds = soc.clock().cycles_to_secs(cycles);
    let result = MemcpyResult {
        variant,
        bytes,
        cycles,
        seconds,
        gbps: bytes as f64 / seconds / 1e9,
        trace: if trace {
            soc.tracer().events()
        } else {
            Vec::new()
        },
    };
    (result, soc)
}

/// Runs one variant copying `bytes` and reports timing.
pub fn run_memcpy(variant: MemcpyVariant, bytes: u64) -> MemcpyResult {
    run_inner(variant, bytes, false, false).0
}

/// Runs one variant with the AXI tracer enabled (Figure 5 timelines).
pub fn run_memcpy_traced(variant: MemcpyVariant, bytes: u64) -> MemcpyResult {
    run_inner(variant, bytes, true, false).0
}

/// Runs one variant with both the tracer and the performance counters
/// enabled, returning the SoC alongside the result so callers can export
/// profile artifacts (text report, Chrome trace). Counter samples are
/// taken at command send and response, giving the trace's counter tracks
/// at least one full window.
pub fn run_memcpy_profiled(variant: MemcpyVariant, bytes: u64) -> (MemcpyResult, bcore::SocSim) {
    run_inner(variant, bytes, true, true)
}

/// Renders a Figure-5 style timeline from a traced result.
pub fn render_timeline(result: &MemcpyResult, cycles_per_col: u64, width: usize) -> String {
    let tracer = Tracer::enabled();
    for e in &result.trace {
        tracer.record(e.cycle, &e.channel, e.id, e.detail.clone());
    }
    tracer.render_timeline(cycles_per_col, width)
}

/// Approximate lines of code for each methodology, as reported in §III-A
/// (implementation + configuration/pragmas). Used by the Figure 4 harness
/// footer.
pub fn loc_comparison() -> Vec<(&'static str, u32, u32)> {
    vec![("Pure-HDL", 470, 0), ("Beethoven", 23, 16), ("HLS", 4, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_copy_correctly() {
        for variant in MemcpyVariant::ALL {
            let result = run_memcpy(variant, 16 * 1024);
            assert!(result.gbps > 0.0, "{}: no bandwidth", variant.label());
            assert_eq!(result.bytes, 16 * 1024);
        }
    }

    #[test]
    fn figure4_ordering_beethoven_tlp_beats_hls() {
        let bytes = 256 * 1024;
        let beethoven = run_memcpy(MemcpyVariant::Beethoven, bytes);
        let hls = run_memcpy(MemcpyVariant::Hls, bytes);
        assert!(
            beethoven.gbps > hls.gbps,
            "Beethoven ({:.2} GB/s) should outperform HLS ({:.2} GB/s)",
            beethoven.gbps,
            hls.gbps
        );
    }

    #[test]
    fn figure4_pure_hdl_close_to_beethoven() {
        // The paper measured Pure-HDL ≈7% ahead of Beethoven; the shape
        // requirement is that they're within ~30% of each other.
        let bytes = 256 * 1024;
        let hdl = run_memcpy(MemcpyVariant::PureHdl, bytes);
        let beethoven = run_memcpy(MemcpyVariant::Beethoven, bytes);
        let ratio = hdl.gbps / beethoven.gbps;
        assert!(
            (0.7..1.4).contains(&ratio),
            "Pure-HDL/Beethoven ratio {ratio:.2} out of expected band"
        );
    }

    #[test]
    fn figure4_control_16_beat_multi_id_does_not_collapse() {
        // The paper: a Beethoven build with 16-beat bursts showed no
        // degradation — burst length alone doesn't explain the HLS gap.
        let bytes = 256 * 1024;
        let b16 = run_memcpy(MemcpyVariant::Beethoven16Beat, bytes);
        let hls = run_memcpy(MemcpyVariant::Hls, bytes);
        assert!(
            b16.gbps > hls.gbps,
            "multi-ID 16-beat ({:.2}) should still beat same-ID HLS ({:.2})",
            b16.gbps,
            hls.gbps
        );
    }

    #[test]
    fn traced_run_records_axi_events() {
        let result = run_memcpy_traced(MemcpyVariant::Beethoven, 4096);
        assert!(result.trace.iter().any(|e| e.channel == "AR"));
        assert!(result.trace.iter().any(|e| e.channel == "B"));
        let timeline = render_timeline(&result, 4, 100);
        assert!(timeline.contains("AR"));
    }

    #[test]
    fn figure5_hls_uses_one_id_beethoven_many() {
        let hls = run_memcpy_traced(MemcpyVariant::Hls, 4096);
        let ids: std::collections::HashSet<u32> = hls
            .trace
            .iter()
            .filter(|e| e.channel == "AR")
            .map(|e| e.id)
            .collect();
        assert_eq!(ids.len(), 1, "HLS model must issue all reads on one ID");
        let beethoven = run_memcpy_traced(MemcpyVariant::Beethoven, 16384);
        let ids: std::collections::HashSet<u32> = beethoven
            .trace
            .iter()
            .filter(|e| e.channel == "AR")
            .map(|e| e.id)
            .collect();
        assert!(ids.len() > 1, "Beethoven must spread reads over IDs");
    }
}
