//! The paper's running example (Figures 2/3): a vector-add core with one
//! Reader and one Writer, adding a scalar to every 32-bit element.

use bcore::{
    AccelCommandSpec, AcceleratorConfig, AcceleratorCore, CoreContext, FieldType,
    ReadChannelConfig, SystemConfig, WriteChannelConfig,
};

/// The system name used in configurations and bindings.
pub const SYSTEM: &str = "MyAcceleratorSystem";

/// The vector-add core of Figure 2: `for each 32b chunk, add addend and
/// write back`.
#[derive(Debug, Default)]
pub struct VecAddCore {
    addend: u32,
    remaining: u32,
    active: bool,
}

impl VecAddCore {
    /// A fresh, idle core.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AcceleratorCore for VecAddCore {
    // Between commands a tick only polls the command queue, which the
    // harness watches through its visibility clock.
    fn idle(&self) -> bool {
        !self.active
    }

    fn tick(&mut self, sim: &bsim::SimCtx, ctx: &mut CoreContext) {
        if !self.active {
            if let Some(cmd) = ctx.take_command(sim) {
                self.addend = cmd.arg("addend") as u32;
                let n = cmd.arg("n_eles") as u32;
                let addr = cmd.arg("vec_addr");
                self.remaining = n;
                self.active = true;
                // write_len_bytes = Cat(n_eles, 0.U(2.W)) — i.e. n * 4.
                let bytes = u64::from(n) * 4;
                ctx.reader("vec_in")
                    .request(addr, bytes)
                    .expect("reader idle");
                ctx.writer("vec_out")
                    .request(addr, bytes)
                    .expect("writer idle");
            }
            return;
        }
        while self.remaining > 0 && ctx.writer("vec_out").can_push() {
            let Some(v) = ctx.reader("vec_in").pop_u32() else {
                break;
            };
            let out = v.wrapping_add(self.addend);
            ctx.writer("vec_out").push_u32(out);
            self.remaining -= 1;
        }
        if self.remaining == 0 && ctx.writer("vec_out").done() && ctx.respond(sim, 0) {
            self.active = false;
        }
    }
}

/// The command spec of Figure 2's `BeethovenIO`.
pub fn command_spec() -> AccelCommandSpec {
    AccelCommandSpec::new(
        "my_accel",
        vec![
            ("addend".to_owned(), FieldType::U(32)),
            ("vec_addr".to_owned(), FieldType::Address),
            ("n_eles".to_owned(), FieldType::U(20)),
        ],
    )
}

/// The Figure 3a configuration: `nCores` vector-add cores with `vec_in` /
/// `vec_out` channels of 4 bytes.
pub fn config(n_cores: u32) -> AcceleratorConfig {
    AcceleratorConfig::new().with_system(
        SystemConfig::new(SYSTEM, n_cores, command_spec(), || {
            Box::new(VecAddCore::new())
        })
        .with_read(ReadChannelConfig::new("vec_in", 4))
        .with_write(WriteChannelConfig::new("vec_out", 4)),
    )
}

/// Builds the argument map for a `my_accel` call.
pub fn args(addend: u32, vec_addr: u64, n_eles: u32) -> std::collections::BTreeMap<String, u64> {
    [
        ("addend".to_owned(), u64::from(addend)),
        ("vec_addr".to_owned(), vec_addr),
        ("n_eles".to_owned(), u64::from(n_eles)),
    ]
    .into_iter()
    .collect()
}

/// Software reference.
pub fn reference(input: &[u32], addend: u32) -> Vec<u32> {
    input.iter().map(|v| v.wrapping_add(addend)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcore::elaborate;
    use bplatform::Platform;
    use bruntime::FpgaHandle;

    #[test]
    fn vecadd_matches_reference_through_runtime() {
        let soc = elaborate(config(1), &Platform::kria()).unwrap();
        let handle = FpgaHandle::new(soc);
        let input: Vec<u32> = (0..512).map(|i| i * 11).collect();
        let mem = handle.malloc(512 * 4).unwrap();
        handle.write_u32_slice(mem, &input);
        let resp = handle
            .call(SYSTEM, 0, args(0xCAFE, mem.device_addr(), 512))
            .unwrap();
        resp.get().unwrap();
        assert_eq!(handle.read_u32_slice(mem, 512), reference(&input, 0xCAFE));
    }

    #[test]
    fn vecadd_on_asic_platform() {
        // The same config elaborates unchanged on the ASIC target — the
        // portability claim of Figure 3a.
        let soc = elaborate(config(2), &Platform::asap7_asic()).unwrap();
        let handle = FpgaHandle::new(soc);
        let input: Vec<u32> = (0..256).collect();
        let mem = handle.malloc(1024).unwrap();
        handle.write_u32_slice(mem, &input);
        handle.copy_to_fpga(mem);
        let resp = handle
            .call(SYSTEM, 1, args(5, mem.device_addr(), 256))
            .unwrap();
        resp.get().unwrap();
        handle.copy_from_fpga(mem);
        assert_eq!(handle.read_u32_slice(mem, 256), reference(&input, 5));
    }

    #[test]
    fn zero_element_command_completes() {
        let soc = elaborate(config(1), &Platform::kria()).unwrap();
        let handle = FpgaHandle::new(soc);
        let mem = handle.malloc(64).unwrap();
        let resp = handle
            .call(SYSTEM, 0, args(1, mem.device_addr(), 0))
            .unwrap();
        resp.get().unwrap();
    }
}
