//! # bkernels — accelerator kernels built on the Beethoven framework
//!
//! The workloads of the paper's evaluation (§III), implemented as real
//! [`bcore::AcceleratorCore`]s that compute correct results through the
//! simulated memory system:
//!
//! * [`vecadd`] — the running example of Figures 2/3.
//! * [`memcpy`] — the §III-A microbenchmark, with the Pure-HDL /
//!   Beethoven / Beethoven-No-TLP / HLS variants of Figures 4/5.
//! * [`machsuite`] — the Table I subset (GeMM, NW, Stencil2D, Stencil3D,
//!   MD-KNN) with software references and the Vitis-HLS / Spatial
//!   comparator models used to regenerate Figure 6.

#![warn(missing_docs)]

pub mod machsuite;
pub mod memcpy;
pub mod vecadd;
