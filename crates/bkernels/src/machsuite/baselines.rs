//! Comparator timing models for Vitis HLS and Spatial (Figure 6's
//! baselines).
//!
//! The paper runs closed-source toolchains (Vitis HLS) and a compiler we
//! cannot rebuild faithfully (Spatial) on real FPGAs. Per the reproduction's
//! substitution rule, we model the *mechanisms* the paper identifies as
//! driving their performance:
//!
//! * **Vitis HLS** selects its clock at synthesis (we assume the 250 MHz it
//!   achieves on these small kernels), pipelines loops at an initiation
//!   interval II ≥ 1, and unrolls by pragma factors — but cannot pipeline
//!   through loop-carried dependencies (NW's DP recurrence gets a long II
//!   covering the read→max→write chain through BRAM).
//! * **Spatial** runs at the default 125 MHz and achieves similar loop
//!   parallelism, with the paper noting its DSE-optimal points often failed
//!   routing — we model the conservative factors that do route.
//!
//! Both models charge the same streaming-memory term (one 64-byte bus beat
//! per cycle) the Beethoven implementation pays.
//!
//! All factors are listed in [`model`] and printed by the Figure 6 harness
//! so the assumptions are visible next to the results.

use super::Bench;

/// A comparison methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Vitis HLS with tuned pragmas.
    VitisHls,
    /// The Spatial DSL at its default 125 MHz.
    Spatial,
}

impl Method {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::VitisHls => "Vitis HLS",
            Method::Spatial => "Spatial",
        }
    }
}

/// The paper's problem sizes (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperParams {
    /// GeMM matrix dimension.
    pub gemm_n: usize,
    /// NW sequence length.
    pub nw_n: usize,
    /// Stencil2D grid dimension.
    pub s2d_n: usize,
    /// Stencil3D grid dimension.
    pub s3d_n: usize,
    /// MD-KNN atom count.
    pub md_n: usize,
    /// MD-KNN neighbours per atom.
    pub md_k: usize,
}

impl Default for PaperParams {
    fn default() -> Self {
        Self {
            gemm_n: 256,
            nw_n: 256,
            s2d_n: 256,
            s3d_n: 32,
            md_n: 1024,
            md_k: 32,
        }
    }
}

/// One methodology's modelled execution of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Methodology.
    pub method: Method,
    /// Kernel clock, MHz.
    pub clock_mhz: u64,
    /// Compute cycles per invocation.
    pub compute_cycles: u64,
    /// Memory streaming cycles per invocation (64 B per cycle).
    pub memory_cycles: u64,
    /// The loop unroll factor assumed.
    pub unroll: u64,
    /// The initiation interval assumed for the inner loop.
    pub ii: u64,
}

impl CycleModel {
    /// Total cycles (compute and streaming overlap imperfectly; we charge
    /// the max plus 10% of the min, the usual dataflow-overlap estimate).
    pub fn total_cycles(&self) -> u64 {
        let hi = self.compute_cycles.max(self.memory_cycles);
        let lo = self.compute_cycles.min(self.memory_cycles);
        hi + lo / 10
    }

    /// Seconds per kernel invocation.
    pub fn seconds_per_invocation(&self) -> f64 {
        self.total_cycles() as f64 / (self.clock_mhz as f64 * 1e6)
    }

    /// Invocations per second.
    pub fn invocations_per_sec(&self) -> f64 {
        1.0 / self.seconds_per_invocation()
    }
}

/// Bytes streamed per invocation (inputs + outputs), shared by every
/// methodology.
pub fn bytes_per_invocation(bench: Bench, p: &PaperParams) -> u64 {
    match bench {
        Bench::Gemm => (3 * p.gemm_n * p.gemm_n * 4) as u64,
        Bench::Nw => (2 * p.nw_n + 4 * p.nw_n) as u64,
        Bench::Stencil2d => (2 * p.s2d_n * p.s2d_n * 4 + 36) as u64,
        Bench::Stencil3d => (2 * p.s3d_n * p.s3d_n * p.s3d_n * 4) as u64,
        Bench::MdKnn => ((3 * p.md_n + p.md_n * p.md_k + 3 * p.md_n) * 4) as u64,
    }
}

/// The comparator model for `method` on `bench` at the paper's sizes.
pub fn model(method: Method, bench: Bench, p: &PaperParams) -> CycleModel {
    // (unroll, ii) assumptions per (method, bench); see module docs.
    let (unroll, ii) = match (method, bench) {
        // GeMM pipelines beautifully in both tools.
        (Method::VitisHls, Bench::Gemm) => (16, 1),
        (Method::Spatial, Bench::Gemm) => (16, 1),
        // NW: loop-carried dependency defeats pragmas. HLS's read→compare→
        // write chain through BRAM yields II≈4; Spatial schedules a
        // slightly tighter II≈3.
        (Method::VitisHls, Bench::Nw) => (1, 4),
        (Method::Spatial, Bench::Nw) => (1, 3),
        // Stencils unroll moderately before routing congestion bites.
        (Method::VitisHls, Bench::Stencil2d) => (8, 1),
        (Method::Spatial, Bench::Stencil2d) => (8, 1),
        (Method::VitisHls, Bench::Stencil3d) => (8, 1),
        (Method::Spatial, Bench::Stencil3d) => (8, 1),
        // MD-KNN: the f32 divide chain limits II even unrolled.
        (Method::VitisHls, Bench::MdKnn) => (4, 2),
        (Method::Spatial, Bench::MdKnn) => (4, 2),
    };
    let inner_iters: u64 = match bench {
        Bench::Gemm => (p.gemm_n * p.gemm_n * p.gemm_n) as u64,
        Bench::Nw => (p.nw_n * p.nw_n) as u64,
        Bench::Stencil2d => (p.s2d_n * p.s2d_n * 9) as u64,
        Bench::Stencil3d => (p.s3d_n * p.s3d_n * p.s3d_n * 8) as u64,
        Bench::MdKnn => (p.md_n * p.md_k) as u64,
    };
    let clock_mhz = match method {
        Method::VitisHls => 250,
        Method::Spatial => 125,
    };
    CycleModel {
        method,
        clock_mhz,
        compute_cycles: inner_iters * ii / unroll,
        memory_cycles: bytes_per_invocation(bench, p) / 64,
        unroll,
        ii,
    }
}

/// The Beethoven core's loop-parallelism factor for each benchmark.
///
/// §III-B: only GeMM is the medium-effort, parameterized kernel "identical
/// to the loop parallelism factors in Vitis HLS or Spatial"; the rest are
/// the low-effort afternoon implementations that "do not take advantage of
/// loop parallelism" beyond their natural datapath width — single-core
/// they sit at or below the HLS baseline (NW excepted, where II=1 wins),
/// and the multi-core composition provides the speedup.
pub fn beethoven_parallelism(bench: Bench) -> usize {
    match bench {
        Bench::Gemm => 16,     // medium effort: matches the HLS/Spatial unroll
        Bench::Nw => 1,        // low effort: one DP cell per cycle, II = 1
        Bench::Stencil2d => 2, // low effort: a 2-cell-wide datapath
        Bench::Stencil3d => 2,
        Bench::MdKnn => 4, // low effort: 4 interactions per cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_exist_for_all_benchmarks() {
        let p = PaperParams::default();
        for bench in Bench::ALL {
            for method in [Method::VitisHls, Method::Spatial] {
                let m = model(method, bench, &p);
                assert!(m.total_cycles() > 0);
                assert!(m.invocations_per_sec() > 0.0);
            }
        }
    }

    #[test]
    fn nw_is_ii_limited_for_both_tools() {
        let p = PaperParams::default();
        let hls = model(Method::VitisHls, Bench::Nw, &p);
        assert_eq!(hls.unroll, 1);
        assert!(hls.ii >= 3, "NW's loop-carried dep must inflate the II");
    }

    #[test]
    fn beethoven_nw_single_core_beats_hls_by_about_2x() {
        // Beethoven NW: II=1 at 125 MHz; HLS: II=4 at 250 MHz. Per-cell
        // rates: 125e6 vs 62.5e6 → 2×, the paper's §III-B.1 observation.
        let p = PaperParams::default();
        let hls = model(Method::VitisHls, Bench::Nw, &p);
        let cells = (p.nw_n * p.nw_n) as f64;
        let beethoven_secs = cells / 125e6; // II=1 at 125 MHz, compute-dominated
        let ratio = hls.seconds_per_invocation() / beethoven_secs;
        assert!(
            (1.5..3.0).contains(&ratio),
            "single-core NW speedup {ratio:.2} should be near the paper's 2x"
        );
    }

    #[test]
    fn spatial_is_slower_than_hls_at_equal_unroll() {
        let p = PaperParams::default();
        for bench in [Bench::Gemm, Bench::Stencil2d, Bench::Stencil3d] {
            let hls = model(Method::VitisHls, bench, &p);
            let spatial = model(Method::Spatial, bench, &p);
            assert!(
                spatial.seconds_per_invocation() > hls.seconds_per_invocation(),
                "{}: 125 MHz Spatial can't beat 250 MHz HLS at the same unroll",
                bench.name()
            );
        }
    }

    #[test]
    fn memory_term_matters_for_gemm() {
        let p = PaperParams::default();
        let m = model(Method::VitisHls, Bench::Gemm, &p);
        assert!(m.memory_cycles > 0);
        assert!(m.compute_cycles > m.memory_cycles, "GeMM is compute bound");
    }
}
