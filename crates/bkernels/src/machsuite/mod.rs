//! The MachSuite subset of Table I, as Beethoven accelerator cores.
//!
//! | Benchmark | Kernel | Size | Parallelism |
//! |-----------|--------|------|-------------|
//! | GeMM      | O(N³) matrix multiply | N = 256 | High |
//! | NW        | O(N²) string alignment | N = 256 | None |
//! | Stencil2D | 2D stencil pattern | N = 256 | Medium |
//! | Stencil3D | 3D stencil pattern | N = 32 | High |
//! | MD-KNN    | N-body via k-nearest neighbours | N = 1024, K = 32 | High |
//!
//! Every kernel has: a deterministic workload generator, a software
//! reference, a functional Beethoven core (computing real results through
//! the simulated memory system), and comparator cycle models for Vitis HLS
//! and Spatial (see [`baselines`]) used to regenerate Figure 6.

pub mod baselines;
pub mod gemm;
pub mod mdknn;
pub mod nw;
pub mod stencil2d;
pub mod stencil3d;

/// The benchmark selection of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// O(N³) matrix multiply.
    Gemm,
    /// Needleman-Wunsch string alignment.
    Nw,
    /// 2D 3×3 stencil.
    Stencil2d,
    /// 3D 7-point stencil.
    Stencil3d,
    /// N-body force computation over k-nearest neighbours.
    MdKnn,
}

impl Bench {
    /// All benchmarks in Table I order.
    pub const ALL: [Bench; 5] = [
        Bench::Gemm,
        Bench::Nw,
        Bench::Stencil2d,
        Bench::Stencil3d,
        Bench::MdKnn,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Bench::Gemm => "GeMM",
            Bench::Nw => "NW",
            Bench::Stencil2d => "Stencil2D",
            Bench::Stencil3d => "Stencil3D",
            Bench::MdKnn => "MD-KNN",
        }
    }

    /// The paper's Table I description.
    pub fn description(&self) -> &'static str {
        match self {
            Bench::Gemm => "O(N^3) matrix multiply",
            Bench::Nw => "O(N^2) string alignment",
            Bench::Stencil2d => "2D stencil pattern",
            Bench::Stencil3d => "3D stencil pattern",
            Bench::MdKnn => "N-Body problem using k-nearest neighbors approx.",
        }
    }

    /// The paper's Table I problem size.
    pub fn paper_size(&self) -> &'static str {
        match self {
            Bench::Gemm => "N = 256",
            Bench::Nw => "N = 256",
            Bench::Stencil2d => "N = 256",
            Bench::Stencil3d => "N = 32",
            Bench::MdKnn => "N = 1024, K = 32",
        }
    }

    /// The paper's Table I parallelism classification.
    pub fn parallelism(&self) -> &'static str {
        match self {
            Bench::Gemm => "High",
            Bench::Nw => "None",
            Bench::Stencil2d => "Medium",
            Bench::Stencil3d => "High",
            Bench::MdKnn => "High",
        }
    }
}

/// A tiny deterministic PRNG (splitmix64) for workload generation, so
/// references and device inputs agree across crates without `rand`
/// version coupling.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A small signed integer in `[-8, 8)` (keeps i32 kernels far from
    /// overflow).
    pub fn small_i32(&mut self) -> i32 {
        (self.below(16) as i32) - 8
    }

    /// A float in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_complete() {
        for bench in Bench::ALL {
            assert!(!bench.name().is_empty());
            assert!(!bench.description().is_empty());
            assert!(!bench.paper_size().is_empty());
            assert!(["High", "Medium", "None"].contains(&bench.parallelism()));
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn small_i32_bounded() {
        let mut rng = SplitMix64(7);
        for _ in 0..1000 {
            let v = rng.small_i32();
            assert!((-8..8).contains(&v));
        }
    }
}
