//! MachSuite Stencil2D: a 3×3 convolution over an N×N grid (Table I:
//! N = 256, medium parallelism).
//!
//! Following MachSuite's `stencil2d`, the filter is applied wherever the
//! 3×3 window fits; the two-cell border of the output stays zero. The core
//! buffers the grid and filter in scratchpads and computes `P` output
//! cells per cycle (9 MACs each).

use bcore::{
    AccelCommandSpec, AcceleratorConfig, AcceleratorCore, CoreContext, FieldType,
    ReadChannelConfig, ScratchpadConfig, SystemConfig, WriteChannelConfig,
};
use bplatform::ResourceVector;

/// System name.
pub const SYSTEM: &str = "Stencil2dSystem";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    LoadFilter,
    LoadGrid,
    Compute,
    Finish,
}

/// The Stencil2D core with parallelism factor `p`.
#[derive(Debug)]
pub struct Stencil2dCore {
    p: usize,
    phase: Phase,
    n: usize,
    pos: usize,
}

impl Stencil2dCore {
    /// A core computing `p` output cells per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn new(p: usize) -> Self {
        assert!(p > 0);
        Self {
            p,
            phase: Phase::Idle,
            n: 0,
            pos: 0,
        }
    }
}

impl AcceleratorCore for Stencil2dCore {
    // In Phase::Idle a tick only polls the command queue, which the
    // harness watches through its visibility clock.
    fn idle(&self) -> bool {
        self.phase == Phase::Idle
    }

    fn tick(&mut self, sim: &bsim::SimCtx, ctx: &mut CoreContext) {
        match self.phase {
            Phase::Idle => {
                if let Some(cmd) = ctx.take_command(sim) {
                    self.n = cmd.arg("n") as usize;
                    assert!(self.n * self.n <= ctx.scratchpad("grid").len());
                    let orig = cmd.arg("orig");
                    let filt = cmd.arg("filter");
                    let sol = cmd.arg("sol");
                    let (sp, reader) = ctx.scratchpad_and_reader("filt", "filter_in");
                    sp.start_init(reader, filt).expect("reader idle");
                    let (spg, readerg) = ctx.scratchpad_and_reader("grid", "grid_in");
                    spg.start_init(readerg, orig).expect("reader idle");
                    ctx.writer("sol")
                        .request(sol, (self.n * self.n * 4) as u64)
                        .expect("writer idle");
                    self.phase = Phase::LoadFilter;
                }
            }
            Phase::LoadFilter => {
                let (sp, reader) = ctx.scratchpad_and_reader("filt", "filter_in");
                sp.service_init(reader);
                if !ctx.scratchpad("filt").initializing() {
                    self.phase = Phase::LoadGrid;
                }
            }
            Phase::LoadGrid => {
                let (sp, reader) = ctx.scratchpad_and_reader("grid", "grid_in");
                sp.service_init(reader);
                if !ctx.scratchpad("grid").initializing() {
                    self.pos = 0;
                    self.phase = Phase::Compute;
                }
            }
            Phase::Compute => {
                let n = self.n;
                let total = n * n;
                for _ in 0..self.p {
                    if self.pos >= total {
                        break;
                    }
                    if !ctx.writer("sol").can_push() {
                        return; // backpressure: retry same position next cycle
                    }
                    let (r, c) = (self.pos / n, self.pos % n);
                    let value = if r < n - 2 && c < n - 2 {
                        let mut acc = 0i32;
                        for k1 in 0..3 {
                            for k2 in 0..3 {
                                let f = ctx.scratchpad("filt").read(k1 * 3 + k2) as u32 as i32;
                                let g = ctx.scratchpad("grid").read((r + k1) * n + c + k2) as u32
                                    as i32;
                                acc = acc.wrapping_add(f.wrapping_mul(g));
                            }
                        }
                        acc
                    } else {
                        0
                    };
                    ctx.writer("sol").push_u32(value as u32);
                    self.pos += 1;
                }
                if self.pos >= total {
                    self.phase = Phase::Finish;
                }
            }
            Phase::Finish => {
                if ctx.writer("sol").done() && ctx.respond(sim, 0) {
                    self.phase = Phase::Idle;
                }
            }
        }
    }
}

/// Command spec: `stencil2d(orig, filter, sol, n)`.
pub fn command_spec() -> AccelCommandSpec {
    AccelCommandSpec::new(
        "stencil2d",
        vec![
            ("orig".to_owned(), FieldType::Address),
            ("filter".to_owned(), FieldType::Address),
            ("sol".to_owned(), FieldType::Address),
            ("n".to_owned(), FieldType::U(16)),
        ],
    )
}

/// Configuration for grids up to `max_n × max_n`, `p` cells per cycle.
pub fn config(n_cores: u32, max_n: usize, p: usize) -> AcceleratorConfig {
    AcceleratorConfig::new().with_system(
        SystemConfig::new(SYSTEM, n_cores, command_spec(), move || {
            Box::new(Stencil2dCore::new(p))
        })
        .with_read(ReadChannelConfig::new("grid_in", 64))
        .with_read(ReadChannelConfig::new("filter_in", 4))
        .with_write(WriteChannelConfig::new("sol", 64))
        .with_scratchpad(ScratchpadConfig::new("grid", 32, max_n * max_n).with_ports(2))
        .with_scratchpad(ScratchpadConfig::new("filt", 32, 9))
        .with_core_logic(ResourceVector::new(
            1_000 + 250 * p as u64,
            7_000 + 1_600 * p as u64,
            7_000 + 1_500 * p as u64,
            0,
            0,
            9 * p as u64,
        )),
    )
}

/// Argument map.
pub fn args(orig: u64, filter: u64, sol: u64, n: usize) -> std::collections::BTreeMap<String, u64> {
    [
        ("orig".to_owned(), orig),
        ("filter".to_owned(), filter),
        ("sol".to_owned(), sol),
        ("n".to_owned(), n as u64),
    ]
    .into_iter()
    .collect()
}

/// Deterministic workload: grid and 3×3 filter of small i32s.
pub fn workload(n: usize, seed: u64) -> (Vec<i32>, Vec<i32>) {
    let mut rng = super::SplitMix64(seed);
    let grid = (0..n * n).map(|_| rng.small_i32()).collect();
    let filter = (0..9).map(|_| rng.small_i32()).collect();
    (grid, filter)
}

/// Software reference (MachSuite semantics: border left zero).
pub fn reference(grid: &[i32], filter: &[i32], n: usize) -> Vec<i32> {
    let mut sol = vec![0i32; n * n];
    for r in 0..n.saturating_sub(2) {
        for c in 0..n.saturating_sub(2) {
            let mut acc = 0i32;
            for k1 in 0..3 {
                for k2 in 0..3 {
                    acc = acc.wrapping_add(
                        filter[k1 * 3 + k2].wrapping_mul(grid[(r + k1) * n + c + k2]),
                    );
                }
            }
            sol[r * n + c] = acc;
        }
    }
    sol
}

/// Output cells per invocation.
pub fn ops(n: usize) -> u64 {
    (n * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcore::elaborate;
    use bplatform::Platform;

    #[test]
    fn stencil2d_matches_reference() {
        let n = 24;
        let mut soc = elaborate(config(1, n, 4), &Platform::sim()).unwrap();
        let (grid, filter) = workload(n, 21);
        {
            let mem = soc.memory();
            let mut mem = mem.borrow_mut();
            mem.write_u32_slice(
                0x1_0000,
                &grid.iter().map(|&x| x as u32).collect::<Vec<_>>(),
            );
            mem.write_u32_slice(
                0x2_0000,
                &filter.iter().map(|&x| x as u32).collect::<Vec<_>>(),
            );
        }
        let token = soc
            .send_command(0, 0, &args(0x1_0000, 0x2_0000, 0x3_0000, n))
            .unwrap();
        soc.run_until_response(token, 50_000_000)
            .expect("stencil finishes");
        let out: Vec<i32> = soc
            .memory()
            .borrow()
            .read_u32_slice(0x3_0000, n * n)
            .into_iter()
            .map(|v| v as i32)
            .collect();
        assert_eq!(out, reference(&grid, &filter, n));
    }

    #[test]
    fn identity_filter_reproduces_interior() {
        let n = 8;
        let mut filter = vec![0i32; 9];
        filter[0] = 1; // top-left tap: sol[r][c] = grid[r][c]
        let grid: Vec<i32> = (0..n * n).map(|i| i as i32 % 13).collect();
        let sol = reference(&grid, &filter, n);
        for r in 0..n - 2 {
            for c in 0..n - 2 {
                assert_eq!(sol[r * n + c], grid[r * n + c]);
            }
        }
        assert_eq!(sol[(n - 1) * n + (n - 1)], 0, "border stays zero");
    }
}
