//! MachSuite NW: Needleman-Wunsch string alignment (Table I: N = 256,
//! no loop parallelism).
//!
//! The DP recurrence carries a dependency through both loops, so pragma
//! unrolling cannot help HLS here — the paper found its low-effort
//! Beethoven implementation "achieved 2× higher throughput over the other
//! baselines, even for a single core" (§III-B.1) because hand-written RTL
//! sustains II=1 on the cell update while the HLS pipeline's loop-carried
//! dependency forces a longer initiation interval.
//!
//! Scoring follows MachSuite: match +1, mismatch −1, gap −1.

use bcore::{
    AccelCommandSpec, AcceleratorConfig, AcceleratorCore, CoreContext, FieldType,
    ReadChannelConfig, ScratchpadConfig, SystemConfig, WriteChannelConfig,
};
use bplatform::ResourceVector;

/// System name.
pub const SYSTEM: &str = "NwSystem";

/// Match score.
pub const MATCH: i32 = 1;
/// Mismatch score.
pub const MISMATCH: i32 = -1;
/// Gap penalty.
pub const GAP: i32 = -1;
/// Padding byte for unused alignment tail (MachSuite's `_`).
pub const PAD: u8 = b'_';

/// Traceback pointers.
const PTR_DIAG: u64 = 0;
const PTR_LEFT: u64 = 1;
const PTR_UP: u64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    LoadA,
    LoadB,
    InitRow0,
    Compute,
    Traceback,
    Pad,
    Drain,
    Finish,
}

/// The NW core: one DP cell per cycle, on-chip traceback matrix, streamed
/// alignment output.
#[derive(Debug)]
pub struct NwCore {
    phase: Phase,
    n: usize,
    out_addr: u64,
    i: usize,
    j: usize,
    /// dp value of the cell diagonal to the current one (`dp[i-1][j-1]`).
    diag: i32,
    /// dp value of the cell to the left (`dp[i][j-1]`).
    left: i32,
    /// Characters emitted by traceback so far.
    out_len: usize,
    drain_pos: usize,
}

impl NwCore {
    /// A fresh core.
    pub fn new() -> Self {
        Self {
            phase: Phase::Idle,
            n: 0,
            out_addr: 0,
            i: 0,
            j: 0,
            diag: 0,
            left: 0,
            out_len: 0,
            drain_pos: 0,
        }
    }
}

impl Default for NwCore {
    fn default() -> Self {
        Self::new()
    }
}

impl AcceleratorCore for NwCore {
    // In Phase::Idle a tick only polls the command queue, which the
    // harness watches through its visibility clock.
    fn idle(&self) -> bool {
        self.phase == Phase::Idle
    }

    fn tick(&mut self, sim: &bsim::SimCtx, ctx: &mut CoreContext) {
        match self.phase {
            Phase::Idle => {
                if let Some(cmd) = ctx.take_command(sim) {
                    self.n = cmd.arg("n") as usize;
                    self.out_addr = cmd.arg("out");
                    assert!(
                        self.n <= ctx.scratchpad("seq_a").len(),
                        "n exceeds capacity"
                    );
                    let a_addr = cmd.arg("seq_a");
                    let b_addr = cmd.arg("seq_b");
                    let (sp, reader) = ctx.scratchpad_and_reader("seq_a", "a");
                    sp.start_init(reader, a_addr).expect("reader idle");
                    // Stash b's address for the next phase via the reader.
                    let (spb, readerb) = ctx.scratchpad_and_reader("seq_b", "b");
                    spb.start_init(readerb, b_addr).expect("reader idle");
                    ctx.writer("out")
                        .request(self.out_addr, (4 * self.n) as u64)
                        .expect("writer idle");
                    self.phase = Phase::LoadA;
                }
            }
            Phase::LoadA => {
                let (sp, reader) = ctx.scratchpad_and_reader("seq_a", "a");
                sp.service_init(reader);
                if !ctx.scratchpad("seq_a").initializing() {
                    self.phase = Phase::LoadB;
                }
            }
            Phase::LoadB => {
                let (sp, reader) = ctx.scratchpad_and_reader("seq_b", "b");
                sp.service_init(reader);
                if !ctx.scratchpad("seq_b").initializing() {
                    self.j = 0;
                    self.phase = Phase::InitRow0;
                }
            }
            Phase::InitRow0 => {
                // dp[0][j] = j * GAP; ptr[0][j] = LEFT. A real design does
                // this with a counter, one entry per cycle.
                let j = self.j;
                ctx.scratchpad("dp_row")
                    .write(j, (j as i32 * GAP) as u32 as u64);
                if j > 0 {
                    ctx.scratchpad("tb").write(j, PTR_LEFT);
                }
                self.j += 1;
                if self.j > self.n {
                    self.i = 1;
                    self.j = 1;
                    self.diag = 0; // dp[0][0]
                    self.left = GAP; // dp[1][0]
                    ctx.scratchpad("tb").write(0, PTR_DIAG);
                    self.phase = Phase::Compute;
                }
            }
            Phase::Compute => {
                // One cell per cycle (II = 1).
                let n = self.n;
                let (i, j) = (self.i, self.j);
                let a_char = ctx.scratchpad("seq_a").read(i - 1) as u8;
                let b_char = ctx.scratchpad("seq_b").read(j - 1) as u8;
                let up = ctx.scratchpad("dp_row").read(j) as u32 as i32;
                let score = if a_char == b_char { MATCH } else { MISMATCH };
                let d = self.diag + score;
                let l = self.left + GAP;
                let u = up + GAP;
                let (best, ptr) = if d >= l && d >= u {
                    (d, PTR_DIAG)
                } else if l >= u {
                    (l, PTR_LEFT)
                } else {
                    (u, PTR_UP)
                };
                ctx.scratchpad("tb").write(i * (n + 1) + j, ptr);
                // Slide the window: current row j-th value replaces dp_row.
                self.diag = up;
                self.left = best;
                ctx.scratchpad("dp_row").write(j, best as u32 as u64);
                self.j += 1;
                if self.j > n {
                    self.i += 1;
                    self.j = 1;
                    self.diag = ((self.i as i32) - 1) * GAP; // dp[i-1][0]
                    self.left = (self.i as i32) * GAP; // dp[i][0]
                    if self.i > n {
                        // Traceback starts at (n, n).
                        self.i = n;
                        self.j = n;
                        self.out_len = 0;
                        self.phase = Phase::Traceback;
                    }
                }
            }
            Phase::Traceback => {
                if self.i == 0 && self.j == 0 {
                    self.phase = Phase::Pad;
                    return;
                }
                let n = self.n;
                let (i, j) = (self.i, self.j);
                let ptr = if i == 0 {
                    PTR_LEFT
                } else if j == 0 {
                    PTR_UP
                } else {
                    ctx.scratchpad("tb").read(i * (n + 1) + j)
                };
                let (ca, cb) = match ptr {
                    PTR_DIAG => {
                        let ca = ctx.scratchpad("seq_a").read(i - 1);
                        let cb = ctx.scratchpad("seq_b").read(j - 1);
                        self.i -= 1;
                        self.j -= 1;
                        (ca, cb)
                    }
                    PTR_LEFT => {
                        let cb = ctx.scratchpad("seq_b").read(j - 1);
                        self.j -= 1;
                        (u64::from(b'-'), cb)
                    }
                    _ => {
                        let ca = ctx.scratchpad("seq_a").read(i - 1);
                        self.i -= 1;
                        (ca, u64::from(b'-'))
                    }
                };
                ctx.scratchpad("out_a").write(self.out_len, ca);
                ctx.scratchpad("out_b").write(self.out_len, cb);
                self.out_len += 1;
            }
            Phase::Pad => {
                // Pad both aligned strings to 2n with '_'.
                if self.out_len < 2 * self.n {
                    ctx.scratchpad("out_a").write(self.out_len, u64::from(PAD));
                    ctx.scratchpad("out_b").write(self.out_len, u64::from(PAD));
                    self.out_len += 1;
                } else {
                    self.drain_pos = 0;
                    self.phase = Phase::Drain;
                }
            }
            Phase::Drain => {
                // Stream out_a then out_b, 4 bytes per cycle.
                let total = 4 * self.n;
                for _ in 0..4 {
                    if self.drain_pos >= total || !ctx.writer("out").can_push() {
                        break;
                    }
                    let byte = if self.drain_pos < 2 * self.n {
                        ctx.scratchpad("out_a").read(self.drain_pos) as u8
                    } else {
                        ctx.scratchpad("out_b").read(self.drain_pos - 2 * self.n) as u8
                    };
                    ctx.writer("out").push_chunk(&[byte]);
                    self.drain_pos += 1;
                }
                if self.drain_pos >= total {
                    self.phase = Phase::Finish;
                }
            }
            Phase::Finish => {
                if ctx.writer("out").done() && ctx.respond(sim, 0) {
                    self.phase = Phase::Idle;
                }
            }
        }
    }
}

/// Command spec: `nw(seq_a, seq_b, out, n)`.
pub fn command_spec() -> AccelCommandSpec {
    AccelCommandSpec::new(
        "nw",
        vec![
            ("seq_a".to_owned(), FieldType::Address),
            ("seq_b".to_owned(), FieldType::Address),
            ("out".to_owned(), FieldType::Address),
            ("n".to_owned(), FieldType::U(16)),
        ],
    )
}

/// Configuration for sequences up to `max_n`.
pub fn config(n_cores: u32, max_n: usize) -> AcceleratorConfig {
    AcceleratorConfig::new().with_system(
        SystemConfig::new(SYSTEM, n_cores, command_spec(), || Box::new(NwCore::new()))
            .with_read(ReadChannelConfig::new("a", 16))
            .with_read(ReadChannelConfig::new("b", 16))
            .with_write(WriteChannelConfig::new("out", 16))
            .with_scratchpad(ScratchpadConfig::new("seq_a", 8, max_n))
            .with_scratchpad(ScratchpadConfig::new("seq_b", 8, max_n))
            .with_scratchpad(ScratchpadConfig::new("dp_row", 32, max_n + 1))
            .with_scratchpad(ScratchpadConfig::new("tb", 2, (max_n + 1) * (max_n + 1)))
            .with_scratchpad(ScratchpadConfig::new("out_a", 8, 2 * max_n))
            .with_scratchpad(ScratchpadConfig::new("out_b", 8, 2 * max_n))
            .with_core_logic(ResourceVector::new(900, 5_500, 5_000, 0, 0, 0)),
    )
}

/// Argument map for an `nw` call.
pub fn args(seq_a: u64, seq_b: u64, out: u64, n: usize) -> std::collections::BTreeMap<String, u64> {
    [
        ("seq_a".to_owned(), seq_a),
        ("seq_b".to_owned(), seq_b),
        ("out".to_owned(), out),
        ("n".to_owned(), n as u64),
    ]
    .into_iter()
    .collect()
}

/// Deterministic workload: two random ACTG sequences of length `n`.
pub fn workload(n: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = super::SplitMix64(seed);
    let alphabet = [b'A', b'C', b'T', b'G'];
    let a = (0..n).map(|_| alphabet[rng.below(4) as usize]).collect();
    let b = (0..n).map(|_| alphabet[rng.below(4) as usize]).collect();
    (a, b)
}

/// Software reference: the aligned pair, in traceback order (end-first),
/// each padded with [`PAD`] to `2n` bytes — the exact layout the core
/// writes.
pub fn reference(a: &[u8], b: &[u8], n: usize) -> (Vec<u8>, Vec<u8>) {
    let w = n + 1;
    let mut dp = vec![0i32; w * w];
    let mut ptr = vec![0u8; w * w];
    for (j, (d, p)) in dp.iter_mut().zip(ptr.iter_mut()).take(n + 1).enumerate() {
        *d = j as i32 * GAP;
        *p = PTR_LEFT as u8;
    }
    for i in 1..=n {
        dp[i * w] = i as i32 * GAP;
        ptr[i * w] = PTR_UP as u8;
        for j in 1..=n {
            let score = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let d = dp[(i - 1) * w + j - 1] + score;
            let l = dp[i * w + j - 1] + GAP;
            let u = dp[(i - 1) * w + j] + GAP;
            let (best, p) = if d >= l && d >= u {
                (d, PTR_DIAG as u8)
            } else if l >= u {
                (l, PTR_LEFT as u8)
            } else {
                (u, PTR_UP as u8)
            };
            dp[i * w + j] = best;
            ptr[i * w + j] = p;
        }
    }
    let mut out_a = Vec::new();
    let mut out_b = Vec::new();
    let (mut i, mut j) = (n, n);
    while i > 0 || j > 0 {
        let p = if i == 0 {
            PTR_LEFT as u8
        } else if j == 0 {
            PTR_UP as u8
        } else {
            ptr[i * w + j]
        };
        match u64::from(p) {
            PTR_DIAG => {
                out_a.push(a[i - 1]);
                out_b.push(b[j - 1]);
                i -= 1;
                j -= 1;
            }
            PTR_LEFT => {
                out_a.push(b'-');
                out_b.push(b[j - 1]);
                j -= 1;
            }
            _ => {
                out_a.push(a[i - 1]);
                out_b.push(b'-');
                i -= 1;
            }
        }
    }
    out_a.resize(2 * n, PAD);
    out_b.resize(2 * n, PAD);
    (out_a, out_b)
}

/// Alignment score of the reference DP (for sanity checks).
pub fn reference_score(a: &[u8], b: &[u8], n: usize) -> i32 {
    let w = n + 1;
    let mut dp = vec![0i32; w * w];
    for (j, d) in dp.iter_mut().take(n + 1).enumerate() {
        *d = j as i32 * GAP;
    }
    for i in 1..=n {
        dp[i * w] = i as i32 * GAP;
        for j in 1..=n {
            let score = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            dp[i * w + j] = (dp[(i - 1) * w + j - 1] + score)
                .max(dp[i * w + j - 1] + GAP)
                .max(dp[(i - 1) * w + j] + GAP);
        }
    }
    dp[n * w + n]
}

/// DP cells per invocation (the useful-op count for throughput).
pub fn ops(n: usize) -> u64 {
    (n * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcore::elaborate;
    use bplatform::Platform;

    type AlignedPair = (Vec<u8>, Vec<u8>);

    fn run(n: usize, seed: u64) -> (AlignedPair, AlignedPair) {
        let mut soc = elaborate(config(1, n), &Platform::sim()).unwrap();
        let (a, b) = workload(n, seed);
        let (a_addr, b_addr, out_addr) = (0x1_0000u64, 0x2_0000u64, 0x3_0000u64);
        {
            let mem = soc.memory();
            let mut mem = mem.borrow_mut();
            mem.write(a_addr, &a);
            mem.write(b_addr, &b);
        }
        let token = soc
            .send_command(0, 0, &args(a_addr, b_addr, out_addr, n))
            .unwrap();
        soc.run_until_response(token, 50_000_000)
            .expect("nw finishes");
        let mem = soc.memory();
        let out_a = mem.borrow().read_vec(out_addr, 2 * n);
        let out_b = mem.borrow().read_vec(out_addr + (2 * n) as u64, 2 * n);
        ((out_a, out_b), reference(&a, &b, n))
    }

    #[test]
    fn nw_alignment_matches_reference() {
        let ((got_a, got_b), (ref_a, ref_b)) = run(32, 11);
        assert_eq!(got_a, ref_a);
        assert_eq!(got_b, ref_b);
    }

    #[test]
    fn nw_identical_sequences_align_perfectly() {
        let n = 16;
        let mut soc = elaborate(config(1, n), &Platform::sim()).unwrap();
        let a = vec![b'A'; n];
        {
            let mem = soc.memory();
            mem.borrow_mut().write(0x1000, &a);
            mem.borrow_mut().write(0x2000, &a);
        }
        let token = soc
            .send_command(0, 0, &args(0x1000, 0x2000, 0x3000, n))
            .unwrap();
        soc.run_until_response(token, 10_000_000).unwrap();
        let out = soc.memory().borrow().read_vec(0x3000, n);
        assert_eq!(out, a, "perfect alignment emits the sequence itself");
        assert_eq!(reference_score(&a, &a, n), n as i32);
    }

    #[test]
    fn reference_alignment_reconstructs_score() {
        // Property: stripping gaps from the aligned outputs recovers the
        // original sequences (reversed).
        let n = 24;
        let (a, b) = workload(n, 3);
        let (out_a, out_b) = reference(&a, &b, n);
        let strip = |s: &[u8]| -> Vec<u8> {
            let mut v: Vec<u8> = s
                .iter()
                .copied()
                .filter(|&c| c != b'-' && c != PAD)
                .collect();
            v.reverse();
            v
        };
        assert_eq!(strip(&out_a), a);
        assert_eq!(strip(&out_b), b);
    }
}
