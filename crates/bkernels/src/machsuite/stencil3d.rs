//! MachSuite Stencil3D: a 7-point stencil over an N³ grid (Table I:
//! N = 32, high parallelism).
//!
//! Following MachSuite's `stencil3d`: interior cells become
//! `C0·orig + C1·(sum of the six face neighbours)`; boundary cells are
//! copied through unchanged. The grid lives in a (URAM-class) scratchpad;
//! `P` cells compute per cycle.

use bcore::{
    AccelCommandSpec, AcceleratorConfig, AcceleratorCore, CoreContext, FieldType,
    ReadChannelConfig, ScratchpadConfig, SystemConfig, WriteChannelConfig,
};
use bplatform::ResourceVector;

/// System name.
pub const SYSTEM: &str = "Stencil3dSystem";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    LoadGrid,
    Compute,
    Finish,
}

/// The Stencil3D core with parallelism factor `p`.
#[derive(Debug)]
pub struct Stencil3dCore {
    p: usize,
    phase: Phase,
    n: usize,
    c0: i32,
    c1: i32,
    pos: usize,
}

impl Stencil3dCore {
    /// A core computing `p` cells per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn new(p: usize) -> Self {
        assert!(p > 0);
        Self {
            p,
            phase: Phase::Idle,
            n: 0,
            c0: 0,
            c1: 0,
            pos: 0,
        }
    }
}

impl AcceleratorCore for Stencil3dCore {
    // In Phase::Idle a tick only polls the command queue, which the
    // harness watches through its visibility clock.
    fn idle(&self) -> bool {
        self.phase == Phase::Idle
    }

    fn tick(&mut self, sim: &bsim::SimCtx, ctx: &mut CoreContext) {
        match self.phase {
            Phase::Idle => {
                if let Some(cmd) = ctx.take_command(sim) {
                    self.n = cmd.arg("n") as usize;
                    assert!(self.n * self.n * self.n <= ctx.scratchpad("grid").len());
                    self.c0 = cmd.arg("c0") as u32 as i32;
                    self.c1 = cmd.arg("c1") as u32 as i32;
                    let orig = cmd.arg("orig");
                    let sol = cmd.arg("sol");
                    let (sp, reader) = ctx.scratchpad_and_reader("grid", "grid_in");
                    sp.start_init(reader, orig).expect("reader idle");
                    ctx.writer("sol")
                        .request(sol, (self.n * self.n * self.n * 4) as u64)
                        .expect("writer idle");
                    self.phase = Phase::LoadGrid;
                }
            }
            Phase::LoadGrid => {
                let (sp, reader) = ctx.scratchpad_and_reader("grid", "grid_in");
                sp.service_init(reader);
                if !ctx.scratchpad("grid").initializing() {
                    self.pos = 0;
                    self.phase = Phase::Compute;
                }
            }
            Phase::Compute => {
                let n = self.n;
                let total = n * n * n;
                for _ in 0..self.p {
                    if self.pos >= total {
                        break;
                    }
                    if !ctx.writer("sol").can_push() {
                        return;
                    }
                    // MachSuite layout: idx = i*n*n + j*n + k (k fastest).
                    let i = self.pos / (n * n);
                    let j = (self.pos / n) % n;
                    let k = self.pos % n;
                    let mut grid = |ii: usize, jj: usize, kk: usize| {
                        ctx.scratchpad("grid").read(ii * n * n + jj * n + kk) as u32 as i32
                    };
                    let interior = i > 0 && i < n - 1 && j > 0 && j < n - 1 && k > 0 && k < n - 1;
                    let value = if interior {
                        let center = grid(i, j, k);
                        let sum = grid(i - 1, j, k)
                            .wrapping_add(grid(i + 1, j, k))
                            .wrapping_add(grid(i, j - 1, k))
                            .wrapping_add(grid(i, j + 1, k))
                            .wrapping_add(grid(i, j, k - 1))
                            .wrapping_add(grid(i, j, k + 1));
                        self.c0
                            .wrapping_mul(center)
                            .wrapping_add(self.c1.wrapping_mul(sum))
                    } else {
                        grid(i, j, k)
                    };
                    ctx.writer("sol").push_u32(value as u32);
                    self.pos += 1;
                }
                if self.pos >= total {
                    self.phase = Phase::Finish;
                }
            }
            Phase::Finish => {
                if ctx.writer("sol").done() && ctx.respond(sim, 0) {
                    self.phase = Phase::Idle;
                }
            }
        }
    }
}

/// Command spec: `stencil3d(orig, sol, n, c0, c1)`.
pub fn command_spec() -> AccelCommandSpec {
    AccelCommandSpec::new(
        "stencil3d",
        vec![
            ("orig".to_owned(), FieldType::Address),
            ("sol".to_owned(), FieldType::Address),
            ("n".to_owned(), FieldType::U(16)),
            ("c0".to_owned(), FieldType::I(32)),
            ("c1".to_owned(), FieldType::I(32)),
        ],
    )
}

/// Configuration for grids up to `max_n³`, `p` cells per cycle.
pub fn config(n_cores: u32, max_n: usize, p: usize) -> AcceleratorConfig {
    AcceleratorConfig::new().with_system(
        SystemConfig::new(SYSTEM, n_cores, command_spec(), move || {
            Box::new(Stencil3dCore::new(p))
        })
        .with_read(ReadChannelConfig::new("grid_in", 64))
        .with_write(WriteChannelConfig::new("sol", 64))
        .with_scratchpad(ScratchpadConfig::new("grid", 32, max_n * max_n * max_n).with_ports(2))
        .with_core_logic(ResourceVector::new(
            1_100 + 220 * p as u64,
            7_500 + 1_400 * p as u64,
            7_500 + 1_400 * p as u64,
            0,
            0,
            7 * p as u64,
        )),
    )
}

/// Argument map.
pub fn args(
    orig: u64,
    sol: u64,
    n: usize,
    c0: i32,
    c1: i32,
) -> std::collections::BTreeMap<String, u64> {
    [
        ("orig".to_owned(), orig),
        ("sol".to_owned(), sol),
        ("n".to_owned(), n as u64),
        ("c0".to_owned(), c0 as u32 as u64),
        ("c1".to_owned(), c1 as u32 as u64),
    ]
    .into_iter()
    .collect()
}

/// Deterministic workload: an n³ grid of small i32s.
pub fn workload(n: usize, seed: u64) -> Vec<i32> {
    let mut rng = super::SplitMix64(seed);
    (0..n * n * n).map(|_| rng.small_i32()).collect()
}

/// Software reference.
pub fn reference(grid: &[i32], n: usize, c0: i32, c1: i32) -> Vec<i32> {
    let idx = |i: usize, j: usize, k: usize| i * n * n + j * n + k;
    let mut sol = grid.to_vec();
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            for k in 1..n - 1 {
                let sum = grid[idx(i - 1, j, k)]
                    .wrapping_add(grid[idx(i + 1, j, k)])
                    .wrapping_add(grid[idx(i, j - 1, k)])
                    .wrapping_add(grid[idx(i, j + 1, k)])
                    .wrapping_add(grid[idx(i, j, k - 1)])
                    .wrapping_add(grid[idx(i, j, k + 1)]);
                sol[idx(i, j, k)] = c0
                    .wrapping_mul(grid[idx(i, j, k)])
                    .wrapping_add(c1.wrapping_mul(sum));
            }
        }
    }
    sol
}

/// Cells per invocation.
pub fn ops(n: usize) -> u64 {
    (n * n * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcore::elaborate;
    use bplatform::Platform;

    #[test]
    fn stencil3d_matches_reference() {
        let n = 8;
        let mut soc = elaborate(config(1, n, 4), &Platform::sim()).unwrap();
        let grid = workload(n, 33);
        soc.memory().borrow_mut().write_u32_slice(
            0x1_0000,
            &grid.iter().map(|&x| x as u32).collect::<Vec<_>>(),
        );
        let token = soc
            .send_command(0, 0, &args(0x1_0000, 0x4_0000, n, 2, -1))
            .unwrap();
        soc.run_until_response(token, 50_000_000)
            .expect("stencil3d finishes");
        let out: Vec<i32> = soc
            .memory()
            .borrow()
            .read_u32_slice(0x4_0000, n * n * n)
            .into_iter()
            .map(|v| v as i32)
            .collect();
        assert_eq!(out, reference(&grid, n, 2, -1));
    }

    #[test]
    fn boundary_passes_through() {
        let n = 4;
        let grid = workload(n, 1);
        let sol = reference(&grid, n, 5, 3);
        // All of a 4^3 grid's outer shell passes through.
        assert_eq!(sol[0], grid[0]);
        assert_eq!(sol[n * n * n - 1], grid[n * n * n - 1]);
    }
}
