//! MachSuite GeMM: O(N³) matrix multiply (Table I: N = 256, high
//! parallelism).
//!
//! This is the paper's one *medium-effort* implementation: the inner loops
//! are "parallelized by a parameterizable amount, identical to the loop
//! parallelism factors in Vitis HLS or Spatial" (§III-B). The core buffers
//! the whole B matrix in a Beethoven scratchpad, streams A row by row, and
//! performs `P` multiply-accumulates per cycle.

use bcore::{
    AccelCommandSpec, AcceleratorConfig, AcceleratorCore, CoreContext, FieldType,
    ReadChannelConfig, ScratchpadConfig, SystemConfig, WriteChannelConfig,
};
use bplatform::ResourceVector;

/// System name.
pub const SYSTEM: &str = "GemmSystem";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    LoadB,
    LoadARow,
    Compute,
    DrainRow,
    Finish,
}

/// The GeMM core. `p` is the loop-parallelism factor (MACs per cycle).
#[derive(Debug)]
pub struct GemmCore {
    p: usize,
    phase: Phase,
    n: usize,
    a_addr: u64,
    c_addr: u64,
    row: usize,
    k: usize,
    jb: usize,
    drain_j: usize,
}

impl GemmCore {
    /// A core with parallelism factor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "parallelism factor must be nonzero");
        Self {
            p,
            phase: Phase::Idle,
            n: 0,
            a_addr: 0,
            c_addr: 0,
            row: 0,
            k: 0,
            jb: 0,
            drain_j: 0,
        }
    }
}

impl AcceleratorCore for GemmCore {
    // In Phase::Idle a tick only polls the command queue, which the
    // harness watches through its visibility clock.
    fn idle(&self) -> bool {
        self.phase == Phase::Idle
    }

    fn tick(&mut self, sim: &bsim::SimCtx, ctx: &mut CoreContext) {
        match self.phase {
            Phase::Idle => {
                if let Some(cmd) = ctx.take_command(sim) {
                    self.n = cmd.arg("n") as usize;
                    self.a_addr = cmd.arg("a");
                    self.c_addr = cmd.arg("c");
                    let b_addr = cmd.arg("b");
                    self.row = 0;
                    assert!(
                        self.n * self.n <= ctx.scratchpad("b_sp").len(),
                        "n exceeds configured scratchpad capacity"
                    );
                    let (sp, reader) = ctx.scratchpad_and_reader("b_sp", "b");
                    sp.start_init(reader, b_addr).expect("b reader idle");
                    ctx.writer("c")
                        .request(self.c_addr, (self.n * self.n * 4) as u64)
                        .expect("writer idle");
                    self.phase = Phase::LoadB;
                }
            }
            Phase::LoadB => {
                let (sp, reader) = ctx.scratchpad_and_reader("b_sp", "b");
                sp.service_init(reader);
                if !ctx.scratchpad("b_sp").initializing() {
                    self.start_row(ctx);
                }
            }
            Phase::LoadARow => {
                let (sp, reader) = ctx.scratchpad_and_reader("a_row", "a");
                sp.service_init(reader);
                if !ctx.scratchpad("a_row").initializing() {
                    self.k = 0;
                    self.jb = 0;
                    // Zero the accumulator row.
                    for j in 0..self.n {
                        ctx.scratchpad("c_row").write(j, 0);
                    }
                    self.phase = Phase::Compute;
                }
            }
            Phase::Compute => {
                // P MACs per cycle: c_row[jb..jb+P] += a_row[k] * b[k][..].
                let n = self.n;
                let a_ik = ctx.scratchpad("a_row").read(self.k) as u32 as i32;
                for lane in 0..self.p {
                    let j = self.jb + lane;
                    if j >= n {
                        break;
                    }
                    let b_kj = ctx.scratchpad("b_sp").read(self.k * n + j) as u32 as i32;
                    let acc = ctx.scratchpad("c_row").read(j) as u32 as i32;
                    let next = acc.wrapping_add(a_ik.wrapping_mul(b_kj));
                    ctx.scratchpad("c_row").write(j, next as u32 as u64);
                }
                self.jb += self.p;
                if self.jb >= n {
                    self.jb = 0;
                    self.k += 1;
                    if self.k == n {
                        self.drain_j = 0;
                        self.phase = Phase::DrainRow;
                    }
                }
            }
            Phase::DrainRow => {
                // Push the finished row to the writer, P words per cycle.
                for _ in 0..self.p {
                    if self.drain_j >= self.n {
                        break;
                    }
                    if !ctx.writer("c").can_push() {
                        break;
                    }
                    let v = ctx.scratchpad("c_row").read(self.drain_j) as u32;
                    ctx.writer("c").push_u32(v);
                    self.drain_j += 1;
                }
                if self.drain_j >= self.n {
                    self.row += 1;
                    if self.row == self.n {
                        self.phase = Phase::Finish;
                    } else {
                        self.start_row(ctx);
                    }
                }
            }
            Phase::Finish => {
                if ctx.writer("c").done() && ctx.respond(sim, 0) {
                    self.phase = Phase::Idle;
                }
            }
        }
    }
}

impl GemmCore {
    fn start_row(&mut self, ctx: &mut CoreContext) {
        let addr = self.a_addr + (self.row * self.n * 4) as u64;
        let (sp, reader) = ctx.scratchpad_and_reader("a_row", "a");
        sp.start_init(reader, addr).expect("a reader idle");
        self.phase = Phase::LoadARow;
    }
}

/// Command spec: `gemm(a, b, c, n)` computing `C = A × B` over i32.
pub fn command_spec() -> AccelCommandSpec {
    AccelCommandSpec::new(
        "gemm",
        vec![
            ("a".to_owned(), FieldType::Address),
            ("b".to_owned(), FieldType::Address),
            ("c".to_owned(), FieldType::Address),
            ("n".to_owned(), FieldType::U(16)),
        ],
    )
}

/// Configuration: `n_cores` GeMM cores sized for `max_n`, parallelism `p`.
pub fn config(n_cores: u32, max_n: usize, p: usize) -> AcceleratorConfig {
    AcceleratorConfig::new().with_system(
        SystemConfig::new(SYSTEM, n_cores, command_spec(), move || {
            Box::new(GemmCore::new(p))
        })
        .with_read(ReadChannelConfig::new("a", 64))
        .with_read(ReadChannelConfig::new("b", 64))
        .with_write(WriteChannelConfig::new("c", 64))
        .with_scratchpad(ScratchpadConfig::new("b_sp", 32, max_n * max_n))
        .with_scratchpad(ScratchpadConfig::new("a_row", 32, max_n))
        .with_scratchpad(ScratchpadConfig::new("c_row", 32, max_n))
        // P parallel MACs dominate the kernel datapath.
        .with_core_logic(ResourceVector::new(
            1_200 + 180 * p as u64,
            8_000 + 1_100 * p as u64,
            8_000 + 1_200 * p as u64,
            0,
            0,
            2 * p as u64,
        )),
    )
}

/// Argument map for a `gemm` call.
pub fn args(a: u64, b: u64, c: u64, n: usize) -> std::collections::BTreeMap<String, u64> {
    [
        ("a".to_owned(), a),
        ("b".to_owned(), b),
        ("c".to_owned(), c),
        ("n".to_owned(), n as u64),
    ]
    .into_iter()
    .collect()
}

/// Deterministic workload: two n×n matrices of small i32s.
pub fn workload(n: usize, seed: u64) -> (Vec<i32>, Vec<i32>) {
    let mut rng = super::SplitMix64(seed);
    let a = (0..n * n).map(|_| rng.small_i32()).collect();
    let b = (0..n * n).map(|_| rng.small_i32()).collect();
    (a, b)
}

/// Software reference: `C = A × B` with wrapping i32 arithmetic (matching
/// the hardware datapath exactly).
pub fn reference(a: &[i32], b: &[i32], n: usize) -> Vec<i32> {
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(b[k * n + j]));
            }
        }
    }
    c
}

/// Useful-operation count for throughput reporting (MACs per invocation).
pub fn ops(n: usize) -> u64 {
    (n * n * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcore::elaborate;
    use bplatform::Platform;

    fn run(n: usize, p: usize) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
        let mut soc = elaborate(config(1, n, p), &Platform::sim()).unwrap();
        let (a, b) = workload(n, 99);
        let (a_addr, b_addr, c_addr) = (0x1_0000u64, 0x8_0000u64, 0x10_0000u64);
        {
            let mem = soc.memory();
            let mut mem = mem.borrow_mut();
            let to_u32 = |v: &[i32]| v.iter().map(|&x| x as u32).collect::<Vec<_>>();
            mem.write_u32_slice(a_addr, &to_u32(&a));
            mem.write_u32_slice(b_addr, &to_u32(&b));
        }
        let token = soc
            .send_command(0, 0, &args(a_addr, b_addr, c_addr, n))
            .unwrap();
        soc.run_until_response(token, 50_000_000)
            .expect("gemm finishes");
        let out: Vec<i32> = soc
            .memory()
            .borrow()
            .read_u32_slice(c_addr, n * n)
            .into_iter()
            .map(|v| v as i32)
            .collect();
        (a, b, out)
    }

    #[test]
    fn gemm_16_matches_reference() {
        let (a, b, out) = run(16, 4);
        assert_eq!(out, reference(&a, &b, 16));
    }

    #[test]
    fn gemm_32_wider_lanes() {
        let (a, b, out) = run(32, 8);
        assert_eq!(out, reference(&a, &b, 32));
    }

    #[test]
    fn higher_parallelism_is_faster() {
        let cycles = |p: usize| {
            let n = 32;
            let mut soc = elaborate(config(1, n, p), &Platform::sim()).unwrap();
            let (a, b) = workload(n, 5);
            {
                let mem = soc.memory();
                let mut mem = mem.borrow_mut();
                mem.write_u32_slice(0x1000, &a.iter().map(|&x| x as u32).collect::<Vec<_>>());
                mem.write_u32_slice(0x9000, &b.iter().map(|&x| x as u32).collect::<Vec<_>>());
            }
            let token = soc
                .send_command(0, 0, &args(0x1000, 0x9000, 0x20000, n))
                .unwrap();
            let start = soc.now();
            soc.run_until_response(token, 50_000_000).unwrap();
            soc.now() - start
        };
        let slow = cycles(2);
        let fast = cycles(8);
        assert!(
            fast * 2 < slow,
            "p=8 ({fast} cycles) should be much faster than p=2 ({slow} cycles)"
        );
    }

    #[test]
    fn back_to_back_commands_reuse_the_core() {
        let n = 16;
        let mut soc = elaborate(config(1, n, 4), &Platform::sim()).unwrap();
        for round in 0..2u64 {
            let (a, b) = workload(n, round);
            let base = 0x10_0000 * (round + 1);
            {
                let mem = soc.memory();
                let mut mem = mem.borrow_mut();
                mem.write_u32_slice(base, &a.iter().map(|&x| x as u32).collect::<Vec<_>>());
                mem.write_u32_slice(
                    base + 0x4000,
                    &b.iter().map(|&x| x as u32).collect::<Vec<_>>(),
                );
            }
            let token = soc
                .send_command(0, 0, &args(base, base + 0x4000, base + 0x8000, n))
                .unwrap();
            soc.run_until_response(token, 50_000_000).unwrap();
            let out: Vec<i32> = soc
                .memory()
                .borrow()
                .read_u32_slice(base + 0x8000, n * n)
                .into_iter()
                .map(|v| v as i32)
                .collect();
            assert_eq!(out, reference(&a, &b, n), "round {round}");
        }
    }
}
