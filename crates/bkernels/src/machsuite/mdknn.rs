//! MachSuite MD-KNN: Lennard-Jones forces over k-nearest neighbours
//! (Table I: N = 1024 atoms, K = 32 neighbours, high parallelism).
//!
//! Per MachSuite's `md/knn`: for every atom, accumulate the LJ force
//! contribution of each listed neighbour:
//! `f = r2inv · r6inv · (lj1 · r6inv − lj2)`, applied along the
//! displacement vector. The datapath is f32 (the FPGA implementation's
//! natural width); the software reference performs the identical operation
//! sequence, so results match bit-exactly.

use bcore::{
    AccelCommandSpec, AcceleratorConfig, AcceleratorCore, CoreContext, FieldType,
    ReadChannelConfig, ScratchpadConfig, SystemConfig, WriteChannelConfig,
};
use bplatform::ResourceVector;

/// System name.
pub const SYSTEM: &str = "MdKnnSystem";

/// LJ coefficients (MachSuite's values).
pub const LJ1: f32 = 1.5;
/// Second LJ coefficient.
pub const LJ2: f32 = 2.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    LoadPos,
    LoadNeighbors,
    Compute,
    Drain,
    Finish,
}

/// The MD-KNN core: `p` neighbour interactions per cycle.
#[derive(Debug)]
pub struct MdKnnCore {
    p: usize,
    phase: Phase,
    n: usize,
    k: usize,
    atom: usize,
    neighbor: usize,
    acc: [f32; 3],
    drain_pos: usize,
}

impl MdKnnCore {
    /// A core computing `p` interactions per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn new(p: usize) -> Self {
        assert!(p > 0);
        Self {
            p,
            phase: Phase::Idle,
            n: 0,
            k: 0,
            atom: 0,
            neighbor: 0,
            acc: [0.0; 3],
            drain_pos: 0,
        }
    }
}

fn f32_bits(v: f32) -> u64 {
    u64::from(v.to_bits())
}

fn bits_f32(v: u64) -> f32 {
    f32::from_bits(v as u32)
}

impl AcceleratorCore for MdKnnCore {
    // In Phase::Idle a tick only polls the command queue, which the
    // harness watches through its visibility clock.
    fn idle(&self) -> bool {
        self.phase == Phase::Idle
    }

    fn tick(&mut self, sim: &bsim::SimCtx, ctx: &mut CoreContext) {
        match self.phase {
            Phase::Idle => {
                if let Some(cmd) = ctx.take_command(sim) {
                    self.n = cmd.arg("n") as usize;
                    self.k = cmd.arg("k") as usize;
                    assert!(self.n * 3 <= ctx.scratchpad("pos").len());
                    assert!(self.n * self.k <= ctx.scratchpad("nl").len());
                    let pos = cmd.arg("pos");
                    let nl = cmd.arg("nl");
                    let force = cmd.arg("force");
                    let (sp, reader) = ctx.scratchpad_and_reader("pos", "pos_in");
                    sp.start_init(reader, pos).expect("reader idle");
                    let (spn, readern) = ctx.scratchpad_and_reader("nl", "nl_in");
                    spn.start_init(readern, nl).expect("reader idle");
                    ctx.writer("force")
                        .request(force, (self.n * 3 * 4) as u64)
                        .expect("writer idle");
                    self.phase = Phase::LoadPos;
                }
            }
            Phase::LoadPos => {
                let (sp, reader) = ctx.scratchpad_and_reader("pos", "pos_in");
                sp.service_init(reader);
                if !ctx.scratchpad("pos").initializing() {
                    self.phase = Phase::LoadNeighbors;
                }
            }
            Phase::LoadNeighbors => {
                let (sp, reader) = ctx.scratchpad_and_reader("nl", "nl_in");
                sp.service_init(reader);
                if !ctx.scratchpad("nl").initializing() {
                    self.atom = 0;
                    self.neighbor = 0;
                    self.acc = [0.0; 3];
                    self.phase = Phase::Compute;
                }
            }
            Phase::Compute => {
                for _ in 0..self.p {
                    if self.phase != Phase::Compute {
                        break;
                    }
                    let i = self.atom;
                    let j = ctx.scratchpad("nl").read(i * self.k + self.neighbor) as usize;
                    let read_pos = |ctx: &mut CoreContext, idx: usize, axis: usize| {
                        bits_f32(ctx.scratchpad("pos").read(idx * 3 + axis))
                    };
                    let xi = read_pos(ctx, i, 0);
                    let yi = read_pos(ctx, i, 1);
                    let zi = read_pos(ctx, i, 2);
                    let dx = xi - read_pos(ctx, j, 0);
                    let dy = yi - read_pos(ctx, j, 1);
                    let dz = zi - read_pos(ctx, j, 2);
                    let r2inv = 1.0f32 / (dx * dx + dy * dy + dz * dz);
                    let r6inv = r2inv * r2inv * r2inv;
                    let potential = r2inv * r6inv * (LJ1 * r6inv - LJ2);
                    self.acc[0] += dx * potential;
                    self.acc[1] += dy * potential;
                    self.acc[2] += dz * potential;
                    self.neighbor += 1;
                    if self.neighbor == self.k {
                        for axis in 0..3 {
                            ctx.scratchpad("fout")
                                .write(i * 3 + axis, f32_bits(self.acc[axis]));
                        }
                        self.acc = [0.0; 3];
                        self.neighbor = 0;
                        self.atom += 1;
                        if self.atom == self.n {
                            self.drain_pos = 0;
                            self.phase = Phase::Drain;
                        }
                    }
                }
            }
            Phase::Drain => {
                for _ in 0..self.p.max(4) {
                    if self.drain_pos >= self.n * 3 || !ctx.writer("force").can_push() {
                        break;
                    }
                    let bits = ctx.scratchpad("fout").read(self.drain_pos) as u32;
                    ctx.writer("force").push_u32(bits);
                    self.drain_pos += 1;
                }
                if self.drain_pos >= self.n * 3 {
                    self.phase = Phase::Finish;
                }
            }
            Phase::Finish => {
                if ctx.writer("force").done() && ctx.respond(sim, 0) {
                    self.phase = Phase::Idle;
                }
            }
        }
    }
}

/// Command spec: `md_knn(pos, nl, force, n, k)`.
pub fn command_spec() -> AccelCommandSpec {
    AccelCommandSpec::new(
        "md_knn",
        vec![
            ("pos".to_owned(), FieldType::Address),
            ("nl".to_owned(), FieldType::Address),
            ("force".to_owned(), FieldType::Address),
            ("n".to_owned(), FieldType::U(16)),
            ("k".to_owned(), FieldType::U(8)),
        ],
    )
}

/// Configuration for up to `max_n` atoms and `max_k` neighbours.
pub fn config(n_cores: u32, max_n: usize, max_k: usize, p: usize) -> AcceleratorConfig {
    AcceleratorConfig::new().with_system(
        SystemConfig::new(SYSTEM, n_cores, command_spec(), move || {
            Box::new(MdKnnCore::new(p))
        })
        .with_read(ReadChannelConfig::new("pos_in", 64))
        .with_read(ReadChannelConfig::new("nl_in", 64))
        .with_write(WriteChannelConfig::new("force", 64))
        .with_scratchpad(ScratchpadConfig::new("pos", 32, 3 * max_n).with_ports(3))
        .with_scratchpad(ScratchpadConfig::new("nl", 32, max_n * max_k))
        .with_scratchpad(ScratchpadConfig::new("fout", 32, 3 * max_n))
        // FP datapath: each lane has ~10 f32 ops incl. a divider.
        .with_core_logic(ResourceVector::new(
            1_400 + 900 * p as u64,
            9_000 + 6_500 * p as u64,
            9_000 + 6_000 * p as u64,
            0,
            0,
            24 * p as u64,
        )),
    )
}

/// Argument map.
pub fn args(
    pos: u64,
    nl: u64,
    force: u64,
    n: usize,
    k: usize,
) -> std::collections::BTreeMap<String, u64> {
    [
        ("pos".to_owned(), pos),
        ("nl".to_owned(), nl),
        ("force".to_owned(), force),
        ("n".to_owned(), n as u64),
        ("k".to_owned(), k as u64),
    ]
    .into_iter()
    .collect()
}

/// Deterministic workload: `n` atom positions (interleaved x,y,z) in a
/// 10³ box and a k-nearest-ish neighbour list (k distinct pseudo-random
/// neighbours per atom, never self — distance ordering does not affect
/// the kernel's arithmetic).
pub fn workload(n: usize, k: usize, seed: u64) -> (Vec<f32>, Vec<u32>) {
    let mut rng = super::SplitMix64(seed);
    let pos: Vec<f32> = (0..3 * n).map(|_| rng.f32_in(0.1, 10.0)).collect();
    let mut nl = Vec::with_capacity(n * k);
    for i in 0..n {
        let mut picked = std::collections::HashSet::new();
        while picked.len() < k {
            let j = rng.below(n as u64) as u32;
            if j as usize != i {
                picked.insert(j);
            }
        }
        let mut sorted: Vec<u32> = picked.into_iter().collect();
        sorted.sort_unstable();
        nl.extend(sorted);
    }
    (pos, nl)
}

/// Software reference, bit-identical to the core's f32 sequence.
pub fn reference(pos: &[f32], nl: &[u32], n: usize, k: usize) -> Vec<f32> {
    let mut force = vec![0f32; 3 * n];
    for i in 0..n {
        let (xi, yi, zi) = (pos[i * 3], pos[i * 3 + 1], pos[i * 3 + 2]);
        let mut acc = [0f32; 3];
        for kk in 0..k {
            let j = nl[i * k + kk] as usize;
            let dx = xi - pos[j * 3];
            let dy = yi - pos[j * 3 + 1];
            let dz = zi - pos[j * 3 + 2];
            let r2inv = 1.0f32 / (dx * dx + dy * dy + dz * dz);
            let r6inv = r2inv * r2inv * r2inv;
            let potential = r2inv * r6inv * (LJ1 * r6inv - LJ2);
            acc[0] += dx * potential;
            acc[1] += dy * potential;
            acc[2] += dz * potential;
        }
        force[i * 3..i * 3 + 3].copy_from_slice(&acc);
    }
    force
}

/// Neighbour interactions per invocation.
pub fn ops(n: usize, k: usize) -> u64 {
    (n * k) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcore::elaborate;
    use bplatform::Platform;

    #[test]
    fn mdknn_matches_reference_bit_exactly() {
        let (n, k) = (32, 8);
        let mut soc = elaborate(config(1, n, k, 2), &Platform::sim()).unwrap();
        let (pos, nl) = workload(n, k, 17);
        {
            let mem = soc.memory();
            let mut mem = mem.borrow_mut();
            mem.write_u32_slice(
                0x1_0000,
                &pos.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
            mem.write_u32_slice(0x2_0000, &nl);
        }
        let token = soc
            .send_command(0, 0, &args(0x1_0000, 0x2_0000, 0x3_0000, n, k))
            .unwrap();
        soc.run_until_response(token, 50_000_000)
            .expect("mdknn finishes");
        let out: Vec<f32> = soc
            .memory()
            .borrow()
            .read_u32_slice(0x3_0000, 3 * n)
            .into_iter()
            .map(f32::from_bits)
            .collect();
        let expect = reference(&pos, &nl, n, k);
        assert_eq!(out.len(), expect.len());
        for (i, (a, b)) in out.iter().zip(expect.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "force component {i} differs");
        }
    }

    #[test]
    fn workload_neighbors_are_valid() {
        let (n, k) = (64, 16);
        let (_, nl) = workload(n, k, 5);
        assert_eq!(nl.len(), n * k);
        for (i, chunk) in nl.chunks(k).enumerate() {
            let set: std::collections::HashSet<_> = chunk.iter().collect();
            assert_eq!(set.len(), k, "neighbours must be distinct");
            assert!(!chunk.contains(&(i as u32)), "no self-interaction");
        }
    }

    #[test]
    fn forces_are_finite() {
        let (n, k) = (16, 4);
        let (pos, nl) = workload(n, k, 9);
        let force = reference(&pos, &nl, n, k);
        assert!(force.iter().all(|f| f.is_finite()));
        assert!(force.iter().any(|&f| f != 0.0));
    }
}
