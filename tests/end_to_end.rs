//! Cross-crate integration tests: full host→runtime→SoC→DRAM flows.

use beethoven::core::elaborate;
use beethoven::core::elaborate::{elaborate_with, ElaborationOptions};
use beethoven::kernels::machsuite::{gemm, nw};
use beethoven::kernels::{memcpy, vecadd};
use beethoven::platform::Platform;
use beethoven::runtime::FpgaHandle;

#[test]
fn quickstart_flow_matches_reference() {
    let soc = elaborate(vecadd::config(1), &Platform::kria()).unwrap();
    let handle = FpgaHandle::new(soc);
    let input: Vec<u32> = (0..777).map(|v| v * 5 + 1).collect();
    let mem = handle.malloc(777 * 4).unwrap();
    handle.write_u32_slice(mem, &input);
    let resp = handle
        .call(vecadd::SYSTEM, 0, vecadd::args(41, mem.device_addr(), 777))
        .unwrap();
    resp.get().unwrap();
    assert_eq!(
        handle.read_u32_slice(mem, 777),
        vecadd::reference(&input, 41)
    );
}

#[test]
fn two_systems_coexist_on_one_accelerator() {
    // "The developer may instantiate multiple Beethoven Systems if they
    // desire multiple functions on their accelerator" (§II-A).
    let mut config = vecadd::config(2);
    let memcpy_sys = memcpy::config().systems.remove(0);
    config = config.with_system(memcpy_sys);
    let mut soc = elaborate(config, &Platform::sim()).unwrap();

    let input: Vec<u32> = (0..256).collect();
    soc.memory().borrow_mut().write_u32_slice(0x1_0000, &input);

    // System 0: vecadd in place at 0x1_0000.
    let vec_args = vecadd::args(100, 0x1_0000, 256);
    let t_vec = soc.send_command(0, 0, &vec_args).unwrap();
    soc.run_until_response(t_vec, 1_000_000).unwrap();

    // System 1: memcpy the result elsewhere.
    let cp_args = [
        ("src".to_owned(), 0x1_0000u64),
        ("dst".to_owned(), 0x9_0000u64),
        ("len".to_owned(), 1024u64),
    ]
    .into_iter()
    .collect();
    let t_cp = soc.send_command(1, 0, &cp_args).unwrap();
    soc.run_until_response(t_cp, 1_000_000).unwrap();

    let out = soc.memory().borrow().read_u32_slice(0x9_0000, 256);
    assert_eq!(out, vecadd::reference(&input, 100));
}

#[test]
fn gemm_through_discrete_runtime_with_dma() {
    let n = 16;
    let soc = elaborate(gemm::config(1, n, 4), &Platform::aws_f1()).unwrap();
    let handle = FpgaHandle::new(soc);
    let (a, b) = gemm::workload(n, 3);
    let pa = handle.malloc((n * n * 4) as u64).unwrap();
    let pb = handle.malloc((n * n * 4) as u64).unwrap();
    let pc = handle.malloc((n * n * 4) as u64).unwrap();
    handle.write_u32_slice(pa, &a.iter().map(|&x| x as u32).collect::<Vec<_>>());
    handle.write_u32_slice(pb, &b.iter().map(|&x| x as u32).collect::<Vec<_>>());
    handle.copy_to_fpga(pa);
    handle.copy_to_fpga(pb);
    let resp = handle
        .call(
            gemm::SYSTEM,
            0,
            gemm::args(pa.device_addr(), pb.device_addr(), pc.device_addr(), n),
        )
        .unwrap();
    resp.get().unwrap();
    handle.copy_from_fpga(pc);
    let got: Vec<i32> = handle
        .read_u32_slice(pc, n * n)
        .into_iter()
        .map(|v| v as i32)
        .collect();
    assert_eq!(got, gemm::reference(&a, &b, n));
    assert!(handle.stats().dma_to_device_bytes >= 2 * (n * n * 4) as u64);
}

#[test]
fn nw_multicore_distinct_alignments() {
    let n = 24;
    let mut soc = elaborate(nw::config(2, n), &Platform::sim()).unwrap();
    let mut expected = Vec::new();
    for core in 0..2u64 {
        let (a, b) = nw::workload(n, core + 10);
        let base = 0x10_000 + core * 0x10_000;
        soc.memory().borrow_mut().write(base, &a);
        soc.memory().borrow_mut().write(base + 0x1000, &b);
        expected.push((base, nw::reference(&a, &b, n)));
    }
    let tokens: Vec<_> = (0..2u16)
        .map(|core| {
            let base = 0x10_000 + u64::from(core) * 0x10_000;
            soc.send_command(0, core, &nw::args(base, base + 0x1000, base + 0x2000, n))
                .unwrap()
        })
        .collect();
    for t in tokens {
        soc.run_until_response(t, 10_000_000).unwrap();
    }
    for (core, (base, (ref_a, ref_b))) in expected.into_iter().enumerate() {
        let got_a = soc.memory().borrow().read_vec(base + 0x2000, 2 * n);
        let got_b = soc
            .memory()
            .borrow()
            .read_vec(base + 0x2000 + (2 * n) as u64, 2 * n);
        assert_eq!(got_a, ref_a, "core {core} aligned A");
        assert_eq!(got_b, ref_b, "core {core} aligned B");
    }
}

#[test]
fn no_tlp_ablation_is_slower_on_long_copies() {
    use beethoven::kernels::memcpy::{run_memcpy, MemcpyVariant};
    let bytes = 128 * 1024;
    let tlp = run_memcpy(MemcpyVariant::Beethoven, bytes);
    let no_tlp = run_memcpy(MemcpyVariant::BeethovenNoTlp, bytes);
    assert!(
        tlp.gbps > no_tlp.gbps,
        "TLP ({:.2} GB/s) must outperform No-TLP ({:.2} GB/s)",
        tlp.gbps,
        no_tlp.gbps
    );
}

#[test]
fn same_id_reorder_window_ablation() {
    // Widening the controller's same-ID window (a reorder buffer) narrows
    // the TLP advantage — evidence the ordering rule is what TLP sidesteps.
    let run = |same_id_inflight: usize| {
        let mut platform = Platform::aws_f1();
        platform.fabric_mhz = 250;
        platform.host_link.mmio_latency_ns = 0;
        let opts = ElaborationOptions {
            burst_beats: 64,
            ids_per_port: 1,
            reader_inflight: 4,
            writer_inflight: 4,
            same_id_inflight,
            ..ElaborationOptions::default()
        };
        let mut soc = elaborate_with(memcpy::config(), &platform, opts).unwrap();
        let bytes = 64 * 1024u64;
        let payload = vec![0x5Au8; bytes as usize];
        soc.memory().borrow_mut().write(0x10_0000, &payload);
        let args = [
            ("src".to_owned(), 0x10_0000u64),
            ("dst".to_owned(), 0x80_0000u64),
            ("len".to_owned(), bytes),
        ]
        .into_iter()
        .collect();
        let t = soc.send_command(0, 0, &args).unwrap();
        soc.run_until_response(t, 10_000_000).unwrap();
        soc.now()
    };
    let strict = run(1);
    let relaxed = run(4);
    assert!(
        relaxed < strict,
        "a same-ID reorder window ({relaxed}) should beat strict ordering ({strict})"
    );
}

#[test]
fn report_artifacts_are_complete() {
    let soc = elaborate(vecadd::config(3), &Platform::aws_f1()).unwrap();
    let report = soc.report();
    assert!(report.bindings.cpp_header.contains("my_accel"));
    assert!(report.bindings.rust_module.contains("my_accel"));
    assert!(report.constraints.contains("pblock"));
    assert!(report.floorplan_ascii.contains("SLR"));
    assert_eq!(report.cores_per_slr.iter().sum::<usize>(), 3);
    assert!(report.cmd_noc.worst_latency >= 1);
    assert!(report.mem_noc.worst_latency >= 1);
    // The structural netlist covers the whole hierarchy.
    assert!(report.netlist.contains("module BeethovenTop"));
    assert!(report.netlist.contains("module Core_MyAcceleratorSystem"));
    assert!(report.netlist.contains("Reader #(DATA_BYTES=4) vec_in"));
}

#[test]
fn commands_cross_the_mmio_wire_protocol() {
    // Every command beat crosses the MMIO FIFO as a five-word frame; the
    // vecadd command packs into one beat.
    let mut soc = elaborate(vecadd::config(1), &Platform::sim()).unwrap();
    soc.memory()
        .borrow_mut()
        .write_u32_slice(0x1000, &[1, 2, 3, 4]);
    assert_eq!(soc.mmio_cmd_words(), 0);
    let token = soc.send_command(0, 0, &vecadd::args(1, 0x1000, 4)).unwrap();
    assert_eq!(soc.mmio_cmd_words(), 5, "one beat = five MMIO words");
    soc.run_until_response(token, 1_000_000).unwrap();
    // A wider command (memcpy: two addresses + length = 160 bits) takes
    // two beats = ten words.
    let mut soc2 = elaborate(memcpy::config(), &Platform::sim()).unwrap();
    let args = [
        ("src".to_owned(), 0u64),
        ("dst".to_owned(), 4096u64),
        ("len".to_owned(), 64u64),
    ]
    .into_iter()
    .collect();
    let token = soc2.send_command(0, 0, &args).unwrap();
    assert_eq!(soc2.mmio_cmd_words(), 10, "two beats = ten MMIO words");
    soc2.run_until_response(token, 1_000_000).unwrap();
}
