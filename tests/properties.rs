//! Property-based integration tests: invariants of the full stack under
//! randomized inputs.

use beethoven::core::elaborate;
use beethoven::kernels::{memcpy, vecadd};
use beethoven::platform::Platform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// memcpy must be byte-exact for arbitrary lengths and (aligned)
    /// offsets, including lengths that are not multiples of the bus width.
    #[test]
    fn memcpy_is_byte_exact(
        len in 1u64..6000,
        src_block in 0u64..8,
        dst_block in 8u64..16,
        seed in any::<u64>(),
    ) {
        let mut soc = elaborate(memcpy::config(), &Platform::sim()).unwrap();
        let src = 0x10_0000 + src_block * 0x1_0000;
        let dst = 0x10_0000 + dst_block * 0x1_0000;
        let mut state = seed;
        let payload: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        // Canary bytes around the destination.
        soc.memory().borrow_mut().write(dst - 8, &[0xEE; 8]);
        soc.memory().borrow_mut().write(dst + len, &[0xDD; 8]);
        soc.memory().borrow_mut().write(src, &payload);
        let args = [
            ("src".to_owned(), src),
            ("dst".to_owned(), dst),
            ("len".to_owned(), len),
        ]
        .into_iter()
        .collect();
        let token = soc.send_command(0, 0, &args).unwrap();
        soc.run_until_response(token, 10_000_000).expect("memcpy completes");
        prop_assert_eq!(soc.memory().borrow().read_vec(dst, len as usize), payload);
        prop_assert_eq!(soc.memory().borrow().read_vec(dst - 8, 8), vec![0xEE; 8]);
        prop_assert_eq!(soc.memory().borrow().read_vec(dst + len, 8), vec![0xDD; 8]);
    }

    /// vecadd with arbitrary addend and element count matches the
    /// reference, for any (word-aligned) buffer address.
    #[test]
    fn vecadd_matches_reference(
        n in 1u32..600,
        addend in any::<u32>(),
        addr_block in 0u64..32,
    ) {
        let mut soc = elaborate(vecadd::config(1), &Platform::sim()).unwrap();
        let addr = 0x10_0000 + addr_block * 0x1_0000;
        let input: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
        soc.memory().borrow_mut().write_u32_slice(addr, &input);
        let token = soc.send_command(0, 0, &vecadd::args(addend, addr, n)).unwrap();
        soc.run_until_response(token, 10_000_000).expect("vecadd completes");
        let out = soc.memory().borrow().read_u32_slice(addr, n as usize);
        prop_assert_eq!(out, vecadd::reference(&input, addend));
    }

    /// Command round trips survive arbitrary field values (the generated
    /// bindings' contract with the hardware decoder).
    #[test]
    fn command_pack_roundtrip_via_soc(addend in any::<u32>(), n in 0u64..(1 << 20)) {
        use beethoven::core::command::{pack_command, unpack_command};
        let spec = vecadd::command_spec();
        let args = vecadd::args(addend, 0xABCD_EF00, n as u32);
        let packed = pack_command(&spec, 0, 0, &args).unwrap();
        let unpacked = unpack_command(&spec, &packed.beats);
        prop_assert_eq!(unpacked.arg("addend"), u64::from(addend));
        prop_assert_eq!(unpacked.arg("vec_addr"), 0xABCD_EF00u64);
        prop_assert_eq!(unpacked.arg("n_eles"), n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The fixed-point A³ attention stays within a bounded error of the
    /// float softmax for arbitrary workload seeds.
    #[test]
    fn attention_error_is_bounded(seed in any::<u64>()) {
        use beethoven::attention::fixed::{
            attention_fixed, attention_float, exp_lut, workload, AttentionParams,
        };
        let params = AttentionParams { dim: 32, keys: 48 };
        let lut = exp_lut();
        let (queries, keys, values) = workload(&params, 2, seed);
        for q in 0..2 {
            let query = &queries[q * params.dim..(q + 1) * params.dim];
            let fixed = attention_fixed(&params, &lut, query, &keys, &values);
            let float = attention_float(&params, query, &keys, &values);
            for (a, b) in fixed.iter().zip(float.iter()) {
                prop_assert!(
                    (f64::from(*a) - b).abs() <= 3.0,
                    "fixed {} vs float {:.3}", a, b
                );
            }
        }
    }
}
