//! Portability tests: the same configurations elaborate and run correctly
//! on every supported platform — the paper's Figure 3a claim.

use beethoven::core::elaborate;
use beethoven::kernels::machsuite::{mdknn, stencil2d, stencil3d};
use beethoven::kernels::vecadd;
use beethoven::platform::Platform;
use beethoven::runtime::FpgaHandle;

fn platforms() -> Vec<Platform> {
    vec![
        Platform::kria(),
        Platform::aws_f1(),
        Platform::sim(),
        Platform::asap7_asic(),
    ]
}

#[test]
fn vecadd_runs_on_every_platform() {
    for platform in platforms() {
        let soc = elaborate(vecadd::config(1), &platform)
            .unwrap_or_else(|e| panic!("{}: {e}", platform.name));
        let handle = FpgaHandle::new(soc);
        let input: Vec<u32> = (0..128).collect();
        let mem = handle.malloc(512).unwrap();
        handle.write_u32_slice(mem, &input);
        handle.copy_to_fpga(mem);
        let resp = handle
            .call(vecadd::SYSTEM, 0, vecadd::args(9, mem.device_addr(), 128))
            .unwrap();
        resp.get()
            .unwrap_or_else(|e| panic!("{}: {e}", platform.name));
        handle.copy_from_fpga(mem);
        assert_eq!(
            handle.read_u32_slice(mem, 128),
            vecadd::reference(&input, 9),
            "platform {}",
            platform.name
        );
    }
}

#[test]
fn stencil2d_correct_on_embedded_and_discrete() {
    for platform in [Platform::kria(), Platform::aws_f1()] {
        let n = 12;
        let soc = elaborate(stencil2d::config(1, n, 2), &platform).unwrap();
        let handle = FpgaHandle::new(soc);
        let (grid, filter) = stencil2d::workload(n, 4);
        let pg = handle.malloc((n * n * 4) as u64).unwrap();
        let pf = handle.malloc(64).unwrap();
        let ps = handle.malloc((n * n * 4) as u64).unwrap();
        handle.write_u32_slice(pg, &grid.iter().map(|&x| x as u32).collect::<Vec<_>>());
        handle.write_u32_slice(pf, &filter.iter().map(|&x| x as u32).collect::<Vec<_>>());
        handle.copy_to_fpga(pg);
        handle.copy_to_fpga(pf);
        let resp = handle
            .call(
                stencil2d::SYSTEM,
                0,
                stencil2d::args(pg.device_addr(), pf.device_addr(), ps.device_addr(), n),
            )
            .unwrap();
        resp.get().unwrap();
        handle.copy_from_fpga(ps);
        let got: Vec<i32> = handle
            .read_u32_slice(ps, n * n)
            .into_iter()
            .map(|v| v as i32)
            .collect();
        assert_eq!(
            got,
            stencil2d::reference(&grid, &filter, n),
            "platform {}",
            platform.name
        );
    }
}

#[test]
fn stencil3d_correct_on_asic_at_1ghz() {
    let n = 6;
    let soc = elaborate(stencil3d::config(1, n, 2), &Platform::asap7_asic()).unwrap();
    assert_eq!(soc.platform().fabric_mhz, 1000);
    let handle = FpgaHandle::new(soc);
    let grid = stencil3d::workload(n, 8);
    let pg = handle.malloc((n * n * n * 4) as u64).unwrap();
    let ps = handle.malloc((n * n * n * 4) as u64).unwrap();
    handle.write_u32_slice(pg, &grid.iter().map(|&x| x as u32).collect::<Vec<_>>());
    handle.copy_to_fpga(pg);
    let resp = handle
        .call(
            stencil3d::SYSTEM,
            0,
            stencil3d::args(pg.device_addr(), ps.device_addr(), n, 3, 1),
        )
        .unwrap();
    resp.get().unwrap();
    handle.copy_from_fpga(ps);
    let got: Vec<i32> = handle
        .read_u32_slice(ps, n * n * n)
        .into_iter()
        .map(|v| v as i32)
        .collect();
    assert_eq!(got, stencil3d::reference(&grid, n, 3, 1));
}

#[test]
fn mdknn_bit_exact_on_kria() {
    let (n, k) = (16, 4);
    let soc = elaborate(mdknn::config(1, n, k, 2), &Platform::kria()).unwrap();
    let handle = FpgaHandle::new(soc);
    let (pos, nl) = mdknn::workload(n, k, 6);
    let pp = handle.malloc((3 * n * 4) as u64).unwrap();
    let pn = handle.malloc((n * k * 4) as u64).unwrap();
    let pf = handle.malloc((3 * n * 4) as u64).unwrap();
    handle.write_u32_slice(pp, &pos.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    handle.write_u32_slice(pn, &nl);
    let resp = handle
        .call(
            mdknn::SYSTEM,
            0,
            mdknn::args(pp.device_addr(), pn.device_addr(), pf.device_addr(), n, k),
        )
        .unwrap();
    resp.get().unwrap();
    let got: Vec<f32> = handle
        .read_u32_slice(pf, 3 * n)
        .into_iter()
        .map(f32::from_bits)
        .collect();
    let expect = mdknn::reference(&pos, &nl, n, k);
    for (a, b) in got.iter().zip(expect.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn fabric_clock_changes_wall_time_not_results() {
    // The same kernel at 1 GHz (ASIC) finishes in fewer wall-clock seconds
    // than at 100 MHz (Kria), with identical output.
    let run = |platform: Platform| -> (f64, Vec<u32>) {
        let soc = elaborate(vecadd::config(1), &platform).unwrap();
        let handle = FpgaHandle::new(soc);
        let input: Vec<u32> = (0..2048).collect();
        let mem = handle.malloc(8192).unwrap();
        handle.write_u32_slice(mem, &input);
        handle.copy_to_fpga(mem);
        let t0 = handle.elapsed_secs();
        let resp = handle
            .call(vecadd::SYSTEM, 0, vecadd::args(1, mem.device_addr(), 2048))
            .unwrap();
        resp.get().unwrap();
        let elapsed = handle.elapsed_secs() - t0;
        handle.copy_from_fpga(mem);
        (elapsed, handle.read_u32_slice(mem, 2048))
    };
    let (kria_time, kria_out) = run(Platform::kria());
    let (asic_time, asic_out) = run(Platform::asap7_asic());
    assert_eq!(kria_out, asic_out);
    assert!(
        asic_time < kria_time,
        "1 GHz ASIC ({asic_time:.2e}s) must beat 100 MHz Kria ({kria_time:.2e}s)"
    );
}
