//! # Beethoven (Rust reproduction)
//!
//! A reproduction of *Beethoven: A Heterogeneous Multi-Core Accelerator
//! System Composer* (ISPASS 2025) as a pure-Rust library stack. The
//! umbrella crate re-exports every subsystem:
//!
//! * [`sim`] — cycle-driven hardware simulation kernel (stands in for
//!   Chisel + Verilator).
//! * [`dram`] — cycle-accurate DRAM timing model (stands in for DRAMSim3).
//! * [`axi`] — AXI4 protocol model and memory controller.
//! * [`noc`] — SLR-aware on-chip network generation.
//! * [`platform`] — device models (AWS F1 / Kria / ASIC / simulation),
//!   resource accounting, floorplanning, SRAM macro compilation.
//! * [`core`] — the Beethoven framework proper: accelerator cores, systems,
//!   Readers/Writers/Scratchpads, RoCC commands, elaboration.
//! * [`runtime`] — the host runtime: allocator, DMA, response handles.
//! * [`kernels`] — microbenchmark and MachSuite accelerator kernels.
//! * [`attention`] — the A³ attention accelerator case study.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

pub use battention as attention;
pub use baxi as axi;
pub use bcore as core;
pub use bdram as dram;
pub use bkernels as kernels;
pub use bnoc as noc;
pub use bplatform as platform;
pub use bruntime as runtime;
pub use bsim as sim;
